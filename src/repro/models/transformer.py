"""A numpy decoder-only transformer with hidden-state capture.

This is the executable substrate behind HCache's correctness story.  The
model runs real forward passes (prefill and decode) over a KV cache and can
*capture* the hidden states that enter each layer — exactly the tensors
HCache persists.  Its :meth:`Transformer.project_kv` method is the paper's
restoration operator (Eq. in §3.1):

    ``K_L = RoPE(W_k . norm(H_L))``,  ``V_L = W_v . norm(H_L)``

where ``H_L`` is the residual-stream input of layer ``L``.  Because the
projection replays the very computation the forward pass performed, the
restored KV cache matches the original exactly — the losslessness property
the test suite asserts.

Hot-path layout: capture accumulates into a :class:`HiddenCapture`
doubling buffer (O(1) per decode step instead of an O(history)
concatenate), and restoration projects **all layers at once** through a
batched norm + GEMM pipeline whose outputs are donated to the KV cache
without a copy (:meth:`Transformer.project_kv_all`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.models.attention import (
    attention_module,
    batched_decode_attention,
    merge_heads,
    repeat_kv,
    scaled_dot_product_attention,
    split_heads,
)
from repro.models.config import ModelConfig
from repro.models.ffn import ffn_forward
from repro.models.hidden_capture import HiddenCapture
from repro.models.kv_cache import KVCache, StackedKVCacheBlock
from repro.models.rope import (
    apply_rope,
    rope_rotate_fullwidth_into,
    rope_rotation_tables,
)
from repro.models.tensor_ops import layernorm, layernorm_into, rmsnorm, rmsnorm_into
from repro.models.weights import LayerWeights, ModelWeights, init_weights

#: Pinned tolerance for comparing the batched multi-session decode path
#: (:meth:`Transformer.decode_batch`) against the serial per-session
#: loop.  The two run identical per-row elementwise arithmetic (norm,
#: RoPE, residuals, softmax max/exp) but their GEMMs differ in the BLAS
#: M-blocking — an ``(B, hidden)`` projection vs B separate ``(1,
#: hidden)`` ones — the same caveat already documented for
#: decode-produced state vs batched-restore comparisons (atol=1e-5 per
#: single projection).  Over a multi-step decode the per-GEMM rounding
#: compounds through layers and the growing cache; measured drift over
#: dozens of steps stays in the 1e-6 range, so 1e-4 leaves two orders
#: of magnitude of headroom for other BLAS builds.
BATCHED_DECODE_ATOL = 1e-4


@dataclass
class ProjectionStats:
    """Accumulated wall time of each restoration projection stage.

    Filled by :meth:`Transformer.project_kv_chunk` when passed along; the
    split quantifies how much of the projection is elementwise work (norm
    and RoPE) versus the GEMMs — the ratio the fused chunk path exists to
    shrink.
    """

    norm_s: float = 0.0
    gemm_s: float = 0.0
    rope_s: float = 0.0
    #: Head-range slice copies of the sharded projection (the in-process
    #: stand-in for the tensor dimension's all-gather); zero on the
    #: single-shard path.
    merge_s: float = 0.0
    chunks: int = 0

    @property
    def elementwise_s(self) -> float:
        """Non-GEMM projection time (norm + RoPE passes)."""
        return self.norm_s + self.rope_s

    @property
    def total_s(self) -> float:
        return self.norm_s + self.gemm_s + self.rope_s + self.merge_s


class RestoreWorkspace:
    """Preallocated scratch and shared RoPE tables for chunked restores.

    Built once per restoration (:meth:`Transformer.restore_workspace`);
    every chunk of every layer is then projected through the same
    buffers, so the steady state allocates nothing and the per-chunk
    working set (a few chunk-sized arrays) stays cache-resident.  The
    cos/sin tables cover the full restored position range and are sliced
    per chunk — the trigonometry is computed once, not per layer or per
    chunk.

    ``sharded=True`` adds the tensor-shard scratch: full-width K *and* V
    GEMM destinations (:attr:`k_tmp`/:attr:`v_tmp`), because the sharded
    projection computes each GEMM once at full width and then merges
    per-head-range slices — a head-sliced GEMM would change the BLAS
    blocking and with it the last-ulp bits (see
    :meth:`Transformer.project_kv_chunk_sharded`).
    """

    def __init__(
        self,
        config: ModelConfig,
        positions: np.ndarray,
        max_chunk_tokens: int,
        sharded: bool = False,
    ) -> None:
        if max_chunk_tokens <= 0:
            raise ConfigError("workspace needs a positive chunk capacity")
        self.config = config
        self.max_chunk_tokens = max_chunk_tokens
        self.sharded = sharded
        self.normed = np.empty((max_chunk_tokens, config.hidden_size), dtype=np.float32)
        self.sq = (
            np.empty_like(self.normed) if config.norm == "rmsnorm" else None
        )
        row_shape = (max_chunk_tokens, config.n_kv_heads, config.head_dim)
        if config.rope:
            positions = np.asarray(positions)
            if positions.ndim != 1:
                raise ConfigError("positions must be a 1-D array of absolute positions")
            self.rot_c, self.rot_s = rope_rotation_tables(
                positions, config.head_dim, config.n_kv_heads
            )
            self.k_tmp = np.empty(row_shape, dtype=np.float32)
            self.rot_swap = np.empty_like(self.k_tmp)
        else:
            self.rot_c = self.rot_s = None
            self.k_tmp = np.empty(row_shape, dtype=np.float32) if sharded else None
            self.rot_swap = None
        self.v_tmp = np.empty(row_shape, dtype=np.float32) if sharded else None


@dataclass
class ForwardResult:
    """Output of one forward pass over a block of new tokens.

    Attributes:
        logits: ``(n_tokens, vocab)`` next-token logits.
        hidden_states: When captured, one ``(n_tokens, hidden)`` array per
            layer holding the residual-stream input of that layer — the
            state HCache saves.  Views into the capture buffer when a
            :class:`HiddenCapture` accumulates across calls; ``None`` when
            not capturing.
    """

    logits: np.ndarray
    hidden_states: list[np.ndarray] | None = None


class Transformer:
    """Decoder-only transformer executing real numpy arithmetic."""

    def __init__(self, config: ModelConfig, weights: ModelWeights) -> None:
        if len(weights.layers) != config.n_layers:
            raise ConfigError(
                f"weights have {len(weights.layers)} layers, config wants {config.n_layers}"
            )
        self.config = config
        self.weights = weights
        #: Lazily built (norm, W_k, W_v) stacks for the batched projection.
        self._projection_stack_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_seed(cls, config: ModelConfig, seed: int = 0) -> "Transformer":
        """Build a model with deterministic random weights."""
        return cls(config, init_weights(config, seed))

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------

    def _norm(self, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        if self.config.norm == "rmsnorm":
            return rmsnorm(x, weight)
        return layernorm(x, weight)

    def embed(self, tokens: np.ndarray) -> np.ndarray:
        """Look up token embeddings, shape ``(n, hidden)``."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 1:
            raise ConfigError("tokens must be a 1-D array of ids")
        if tokens.size and (tokens.min() < 0 or tokens.max() >= self.config.vocab_size):
            raise ConfigError("token id out of vocabulary range")
        return self.weights.embedding[tokens]

    def compute_qkv(
        self, layer: int, hidden: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project a layer's input hidden states into rotated Q, K, V."""
        w = self.weights.layers[layer]
        normed = self._norm(hidden, w.attn_norm)
        q, k, v = attention_module(normed, w.wq, w.wk, w.wv, self.config)
        if self.config.rope:
            q = apply_rope(q, positions)
            k = apply_rope(k, positions)
        return q, k, v

    def project_kv(
        self, layer: int, hidden: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """HCache's restoration operator: hidden states -> (K, V).

        This is the lightweight GEMM pair (plus RoPE on K) that replaces a
        full prefill when restoring layer ``layer`` — no attention, no FFN.
        """
        w = self.weights.layers[layer]
        normed = self._norm(np.asarray(hidden, dtype=np.float32), w.attn_norm)
        k = split_heads(normed @ w.wk, self.config.n_kv_heads)
        v = split_heads(normed @ w.wv, self.config.n_kv_heads)
        if self.config.rope:
            k = apply_rope(k, positions)
        return k, v

    def _projection_stack(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stacked per-layer ``(attn_norm, W_k, W_v)`` for batched restores."""
        if self._projection_stack_cache is None:
            layers = self.weights.layers
            norm_w = np.stack([w.attn_norm for w in layers])[:, None, :]
            wk_all = np.stack([w.wk for w in layers])
            wv_all = np.stack([w.wv for w in layers])
            self._projection_stack_cache = (norm_w, wk_all, wv_all)
        return self._projection_stack_cache

    def project_kv_all(
        self,
        hidden_all: np.ndarray | list[np.ndarray],
        positions: np.ndarray,
        layers: list[int] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched restoration operator over many layers at once.

        Args:
            hidden_all: ``(n_sel, n_tokens, hidden)`` residual inputs, one
                row-block per selected layer — a stacked array or a list
                of per-layer ``(n_tokens, hidden)`` arrays (consumed
                without stacking them first).
            positions: Absolute positions, shape ``(n_tokens,)``.
            layers: Layer indices matching ``hidden_all``'s first axis;
                ``None`` means all layers in order.

        Returns:
            ``(K, V)`` of shape ``(n_sel, n_tokens, n_kv_heads, head_dim)``
            — fresh C-contiguous arrays a :class:`KVCache` can adopt
            without copying.  Every GEMM writes straight into the
            preallocated output (becoming cache storage via
            :meth:`KVCache.install_all`), RoPE terms are computed once and
            shared across layers, and the per-layer op granularity keeps
            working sets cache-resident — the results are bit-identical to
            per-layer :meth:`project_kv`.
        """
        blocks, sel, n_tokens = self._prepare_projection(hidden_all, layers)
        row_shape = (n_tokens, self.config.n_kv_heads, self.config.head_dim)
        k = np.empty((len(blocks), *row_shape), dtype=np.float32)
        v = np.empty_like(k)
        self._project_blocks(blocks, sel, positions, lambda i: (k[i], v[i]))
        return k, v

    def project_kv_into(
        self,
        hidden_all: np.ndarray | list[np.ndarray],
        positions: np.ndarray,
        cache: KVCache,
        layers: list[int] | None = None,
    ) -> None:
        """Like :meth:`project_kv_all`, but projecting straight into
        ``cache``'s backing storage via :meth:`KVCache.install_view`.

        The cache keeps whatever capacity it already has (callers reserve
        slack for upcoming decode appends before restoring), so no
        adopt-then-grow reallocation ever copies the restored history.
        """
        blocks, sel, n_tokens = self._prepare_projection(hidden_all, layers)
        views = [cache.install_view(layer, n_tokens) for layer in sel]
        self._project_blocks(blocks, sel, positions, lambda i: views[i])

    def _prepare_projection(
        self,
        hidden_all: np.ndarray | list[np.ndarray],
        layers: list[int] | None,
    ):
        """Validate projection inputs and resolve the layer selection."""
        if isinstance(hidden_all, np.ndarray):
            hidden_all = np.asarray(hidden_all, dtype=np.float32)
            if hidden_all.ndim != 3:
                raise ConfigError(
                    f"hidden_all must be (layers, n, {self.config.hidden_size}), "
                    f"got {hidden_all.shape}"
                )
            blocks: list[np.ndarray] | np.ndarray = hidden_all
        else:
            blocks = [np.asarray(h, dtype=np.float32) for h in hidden_all]
            for block in blocks:
                if block.ndim != 2 or block.shape != blocks[0].shape:
                    raise ConfigError("all layers must cover the same tokens")
        if len(blocks) == 0 or blocks[0].shape[-1] != self.config.hidden_size:
            raise ConfigError(
                f"hidden_all must be (layers, n, {self.config.hidden_size}) blocks"
            )
        if layers is not None:
            if len(layers) != len(blocks):
                raise ConfigError("layer selection must match hidden_all's first axis")
            for layer in layers:
                if not 0 <= layer < self.config.n_layers:
                    raise ConfigError(f"layer {layer} out of range")
            sel = list(layers)
        elif len(blocks) != self.config.n_layers:
            raise ConfigError(
                f"need hidden states for all {self.config.n_layers} layers, "
                f"got {len(blocks)}"
            )
        else:
            sel = list(range(len(blocks)))
        return blocks, sel, blocks[0].shape[0]

    def _project_blocks(self, blocks, sel, positions, dest) -> None:
        """Run the shared fused norm + out= GEMM (+ RoPE) loop.

        ``sel[i]`` is the model layer behind block ``i`` (weights are
        integer-indexed from the cached stacks — zero-copy views, no
        per-call fancy-index copies).  ``dest(i)`` returns the writable
        ``(k, v)`` destination views for block ``i`` — either rows of a
        fresh array pair (:meth:`project_kv_all`) or cache storage
        (:meth:`project_kv_into`).  Each block goes through the same
        fused per-chunk projection the streamed restore uses (with the
        whole layer as one chunk), so every restoration path stays
        bit-exact with per-layer :meth:`project_kv`.
        """
        n_tokens = blocks[0].shape[0]
        if self.config.rope:
            positions = np.asarray(positions)
            if positions.shape != (n_tokens,):
                raise ConfigError(
                    f"positions shape {positions.shape} mismatches token count {n_tokens}"
                )
        workspace = self.restore_workspace(positions, max(n_tokens, 1))
        for i, layer in enumerate(sel):
            k_dest, v_dest = dest(i)
            self.project_kv_chunk(layer, blocks[i], 0, k_dest, v_dest, workspace)

    def restore_workspace(
        self, positions: np.ndarray, max_chunk_tokens: int, sharded: bool = False
    ) -> RestoreWorkspace:
        """Build the per-restore scratch for :meth:`project_kv_chunk`.

        ``positions`` are the absolute positions of every token the
        restore will cover (the RoPE tables are precomputed for all of
        them once); ``max_chunk_tokens`` bounds the largest chunk that
        will be projected through the workspace.  ``sharded=True`` adds
        the full-width GEMM scratch :meth:`project_kv_chunk_sharded`
        merges head ranges from.
        """
        return RestoreWorkspace(self.config, positions, max_chunk_tokens, sharded)

    def project_kv_chunk(
        self,
        layer: int,
        hidden_chunk: np.ndarray,
        row_start: int,
        k_dest: np.ndarray,
        v_dest: np.ndarray,
        workspace: RestoreWorkspace,
        stats: ProjectionStats | None = None,
    ) -> None:
        """Fused restoration projection of one chunk of one layer.

        Runs norm + K/V GEMMs + RoPE rotation over ``hidden_chunk`` (rows
        ``[row_start, row_start + m)`` of the layer's token run) in one
        pass, writing results straight into ``k_dest``/``v_dest`` — row
        slices of the KV cache's backing storage.  All intermediates live
        in ``workspace``; the elementwise stages (norm, RoPE) are the
        fused ``out=`` variants, so the chunk path performs zero
        allocations and two fewer full passes over the data than the
        pre-chunk pipeline.  Arithmetic order matches
        :meth:`project_kv` exactly, keeping the result bit-identical to a
        whole-layer (or naive per-layer) projection of the same rows.

        ``stats`` (optional) accumulates per-stage wall time.
        """
        config = self.config
        norm_w, wk_all, wv_all = self._projection_stack()
        hidden_chunk = np.asarray(hidden_chunk, dtype=np.float32)
        if hidden_chunk.ndim != 2 or hidden_chunk.shape[1] != config.hidden_size:
            raise ConfigError(
                f"hidden chunk must be (m, {config.hidden_size}), got {hidden_chunk.shape}"
            )
        m = hidden_chunk.shape[0]
        if m > workspace.max_chunk_tokens:
            raise ConfigError(
                f"chunk of {m} tokens exceeds workspace capacity "
                f"{workspace.max_chunk_tokens}"
            )
        row_shape = (m, config.n_kv_heads, config.head_dim)
        if k_dest.shape != row_shape or v_dest.shape != row_shape:
            raise ConfigError(
                f"destinations must be {row_shape}, got {k_dest.shape} / {v_dest.shape}"
            )
        kv_size = config.kv_size
        timed = stats is not None
        t0 = time.perf_counter() if timed else 0.0
        normed = workspace.normed[:m]
        if config.norm == "rmsnorm":
            rmsnorm_into(hidden_chunk, norm_w[layer, 0], normed, workspace.sq[:m])
        else:
            layernorm_into(hidden_chunk, norm_w[layer, 0], normed)
        if timed:
            t1 = time.perf_counter()
            stats.norm_s += t1 - t0
            t0 = t1
        if config.rope:
            if row_start < 0 or row_start + m > workspace.rot_c.shape[0]:
                raise ConfigError(
                    f"chunk rows [{row_start}, {row_start + m}) outside the "
                    f"workspace's {workspace.rot_c.shape[0]} precomputed positions"
                )
            k_tmp = workspace.k_tmp[:m]
            np.matmul(normed, wk_all[layer], out=k_tmp.reshape(m, kv_size))
            np.matmul(normed, wv_all[layer], out=v_dest.reshape(m, kv_size))
            if timed:
                t1 = time.perf_counter()
                stats.gemm_s += t1 - t0
                t0 = t1
            rope_rotate_fullwidth_into(
                k_tmp,
                workspace.rot_c[row_start : row_start + m],
                workspace.rot_s[row_start : row_start + m],
                out=k_dest,
                swap=workspace.rot_swap[:m],
            )
            if timed:
                stats.rope_s += time.perf_counter() - t0
        else:
            np.matmul(normed, wk_all[layer], out=k_dest.reshape(m, kv_size))
            np.matmul(normed, wv_all[layer], out=v_dest.reshape(m, kv_size))
            if timed:
                stats.gemm_s += time.perf_counter() - t0
        if timed:
            stats.chunks += 1

    def project_kv_chunk_sharded(
        self,
        layer: int,
        hidden_chunk: np.ndarray,
        row_start: int,
        k_dest: np.ndarray,
        v_dest: np.ndarray,
        workspace: RestoreWorkspace,
        head_ranges: Sequence[tuple[int, int]],
        stats: ProjectionStats | None = None,
    ) -> None:
        """Head-sharded variant of :meth:`project_kv_chunk`.

        Projects one chunk and merges it into ``k_dest``/``v_dest`` as a
        sequence of disjoint KV-head ranges — the tensor dimension of a
        sharded restore, where each simulated rank owns one range of
        ``head_ranges`` (see :func:`repro.core.gqa.partition_kv_heads`).

        **Merge discipline, for bit-exactness:** the norm and both GEMMs
        run once at *full width* into workspace scratch — a head-sliced
        GEMM (``normed @ w[:, h0:h1]``) changes the BLAS blocking and
        with it the last-ulp bits, so partitioning must never reach the
        GEMM.  Only the strictly elementwise stages are head-sliced: the
        RoPE rotation (per-element over ``(token, head, dim)``, so a
        strided head-slice computes identical bits) and the V/non-RoPE-K
        slice copies.  The union of the ranges' writes is therefore
        bit-identical to :meth:`project_kv_chunk` writing the full
        destinations, for every partition of the heads.

        ``head_ranges`` must tile ``[0, n_kv_heads)`` contiguously in
        order — a gap or overlap would silently misproject, so it is
        rejected.  The workspace must be built with ``sharded=True``.
        """
        config = self.config
        norm_w, wk_all, wv_all = self._projection_stack()
        hidden_chunk = np.asarray(hidden_chunk, dtype=np.float32)
        if hidden_chunk.ndim != 2 or hidden_chunk.shape[1] != config.hidden_size:
            raise ConfigError(
                f"hidden chunk must be (m, {config.hidden_size}), got {hidden_chunk.shape}"
            )
        m = hidden_chunk.shape[0]
        if m > workspace.max_chunk_tokens:
            raise ConfigError(
                f"chunk of {m} tokens exceeds workspace capacity "
                f"{workspace.max_chunk_tokens}"
            )
        if workspace.v_tmp is None:
            raise ConfigError(
                "sharded projection needs a workspace built with sharded=True"
            )
        row_shape = (m, config.n_kv_heads, config.head_dim)
        if k_dest.shape != row_shape or v_dest.shape != row_shape:
            raise ConfigError(
                f"destinations must be {row_shape}, got {k_dest.shape} / {v_dest.shape}"
            )
        expected = 0
        for h0, h1 in head_ranges:
            if h0 != expected or h1 <= h0:
                raise ConfigError(
                    f"head ranges {list(head_ranges)} must tile "
                    f"[0, {config.n_kv_heads}) contiguously in order"
                )
            expected = h1
        if expected != config.n_kv_heads:
            raise ConfigError(
                f"head ranges {list(head_ranges)} must cover all "
                f"{config.n_kv_heads} KV heads"
            )
        kv_size = config.kv_size
        timed = stats is not None
        t0 = time.perf_counter() if timed else 0.0
        normed = workspace.normed[:m]
        if config.norm == "rmsnorm":
            rmsnorm_into(hidden_chunk, norm_w[layer, 0], normed, workspace.sq[:m])
        else:
            layernorm_into(hidden_chunk, norm_w[layer, 0], normed)
        if timed:
            t1 = time.perf_counter()
            stats.norm_s += t1 - t0
            t0 = t1
        k_tmp = workspace.k_tmp[:m]
        v_tmp = workspace.v_tmp[:m]
        np.matmul(normed, wk_all[layer], out=k_tmp.reshape(m, kv_size))
        np.matmul(normed, wv_all[layer], out=v_tmp.reshape(m, kv_size))
        if timed:
            t1 = time.perf_counter()
            stats.gemm_s += t1 - t0
            t0 = t1
        if config.rope:
            if row_start < 0 or row_start + m > workspace.rot_c.shape[0]:
                raise ConfigError(
                    f"chunk rows [{row_start}, {row_start + m}) outside the "
                    f"workspace's {workspace.rot_c.shape[0]} precomputed positions"
                )
            rows = slice(row_start, row_start + m)
            for h0, h1 in head_ranges:
                heads = slice(h0, h1)
                rope_rotate_fullwidth_into(
                    k_tmp[:, heads],
                    workspace.rot_c[rows, heads],
                    workspace.rot_s[rows, heads],
                    out=k_dest[:, heads],
                    swap=workspace.rot_swap[:m, heads],
                )
            if timed:
                t1 = time.perf_counter()
                stats.rope_s += t1 - t0
                t0 = t1
        else:
            for h0, h1 in head_ranges:
                k_dest[:, h0:h1] = k_tmp[:, h0:h1]
        for h0, h1 in head_ranges:
            v_dest[:, h0:h1] = v_tmp[:, h0:h1]
        if timed:
            stats.merge_s += time.perf_counter() - t0
            stats.chunks += 1

    def layer_forward(
        self,
        layer: int,
        hidden: np.ndarray,
        kv_cache: KVCache,
        positions: np.ndarray,
    ) -> np.ndarray:
        """Run one transformer layer over a block of new tokens.

        Appends the block's K/V to the cache, attends over the whole cached
        history, and returns the next layer's input hidden states.
        Positions must be the contiguous range continuing the cache.
        """
        positions = np.asarray(positions)
        if kv_cache.layer_len(layer) != positions[0]:
            raise ConfigError(
                f"layer {layer}: cache has {kv_cache.layer_len(layer)} tokens but "
                f"block starts at position {positions[0]}"
            )
        w: LayerWeights = self.weights.layers[layer]
        q, k, v = self.compute_qkv(layer, hidden, positions)
        kv_cache.append(layer, k, v)
        keys, values = kv_cache.get(layer)
        n_rep = self.config.n_heads // self.config.n_kv_heads
        attn = scaled_dot_product_attention(
            q, repeat_kv(keys, n_rep), repeat_kv(values, n_rep), query_offset=int(positions[0])
        )
        hidden = hidden + merge_heads(attn) @ w.wo
        normed = self._norm(hidden, w.ffn_norm)
        return hidden + ffn_forward(normed, w, self.config.n_ffn_mats)

    # ------------------------------------------------------------------
    # forward passes
    # ------------------------------------------------------------------

    def forward(
        self,
        tokens: np.ndarray,
        kv_cache: KVCache,
        capture_hidden: bool = False,
        capture: HiddenCapture | None = None,
    ) -> ForwardResult:
        """Process a block of new tokens on top of the cached history.

        The block's absolute positions continue the cache: token ``i`` of
        the block sits at position ``len(kv_cache) + i``.

        When ``capture`` is given, the block's per-layer hidden states are
        written into it with O(block) slice writes and the returned
        ``hidden_states`` are views of that buffer — the accumulation path
        ``generate`` uses to stay O(n) over a whole generation.  Plain
        ``capture_hidden=True`` allocates a block-sized buffer internally.
        """
        tokens = np.asarray(tokens)
        start = len(kv_cache)
        if start + tokens.size > self.config.max_context:
            raise ConfigError(
                f"context {start + tokens.size} exceeds max {self.config.max_context}"
            )
        positions = np.arange(start, start + tokens.size)
        hidden = self.embed(tokens)
        if capture is None and capture_hidden:
            capture = HiddenCapture(self.config.n_layers, self.config.hidden_size)
            capture.reserve(tokens.size)
        block_start = capture.extend(tokens.size) if capture is not None else 0
        for layer in range(self.config.n_layers):
            if capture is not None:
                capture.write(layer, block_start, hidden)
            hidden = self.layer_forward(layer, hidden, kv_cache, positions)
        final = self._norm(hidden, self.weights.final_norm)
        logits = final @ self.weights.lm_head
        captured = (
            capture.block_views(block_start, block_start + tokens.size)
            if capture is not None
            else None
        )
        return ForwardResult(logits=logits, hidden_states=captured)

    def prefill(
        self, tokens: np.ndarray, kv_cache: KVCache | None = None, capture_hidden: bool = False
    ) -> tuple[ForwardResult, KVCache]:
        """Convenience: forward a prompt into a (new) cache."""
        cache = kv_cache if kv_cache is not None else KVCache(self.config)
        result = self.forward(tokens, cache, capture_hidden=capture_hidden)
        return result, cache

    def decode_step(
        self, token: int, kv_cache: KVCache, capture_hidden: bool = False
    ) -> ForwardResult:
        """Autoregressively process one token."""
        return self.forward(np.array([token]), kv_cache, capture_hidden=capture_hidden)

    def decode_batch(
        self,
        tokens: np.ndarray,
        caches: Sequence[KVCache],
        captures: Sequence[HiddenCapture] | None = None,
    ) -> np.ndarray:
        """One decode step for ``B`` concurrent sessions in a single pass.

        The continuous-batching hot path: instead of ``B`` serial
        single-token forwards, QKV projection, attention, and FFN run as
        batched GEMMs over all sessions at once.  ``tokens[b]`` is the
        next token of session ``b`` and ``caches[b]`` its KV cache; the
        sessions may sit at different positions (each token's RoPE angle
        and attention span come from its own cache length).  When the
        caches are stacked in one :class:`StackedKVCacheBlock` (slot
        order matching ``caches``), history K/V is read through
        zero-copy stacked views and the new rows land in one vectorized
        write; otherwise the histories are gathered into a zero-padded
        scratch stack per layer — same results, one extra copy.

        Per-session hidden states are written into ``captures[b]``
        exactly like the serial path writes its capture (one row per
        layer), so the HCache saving path is unchanged: callers persist
        ``captures[b].block_views(row, row + 1)`` per step.

        Returns ``(B, vocab)`` next-token logits.

        **Equivalence contract:** row ``b`` matches a serial
        ``forward([tokens[b]], caches[b])`` to within
        :data:`BATCHED_DECODE_ATOL`, not bit-exactly — the batched GEMMs
        (M=B) round differently from the serial M=1 GEMVs, the same
        BLAS-blocking caveat documented for live-cache comparisons in
        the ROADMAP.  All elementwise stages (norm, RoPE, softmax,
        residuals) are per-row and bit-identical; the padded softmax's
        extra exactly-zero terms can shift the reduction by an ulp.  The
        stacked-block and gather fallback flavors of *this* method are
        bit-identical to each other.
        """
        config = self.config
        tokens = np.asarray(tokens)
        caches = list(caches)
        if tokens.ndim != 1 or tokens.size == 0:
            raise ConfigError("tokens must be a non-empty 1-D array, one per session")
        if len(caches) != tokens.size:
            raise ConfigError(
                f"{tokens.size} tokens for {len(caches)} caches; need one each"
            )
        if len({id(cache) for cache in caches}) != len(caches):
            raise ConfigError("the same cache cannot serve two batch slots")
        for cache in caches:
            if cache.config != config:
                raise ConfigError("every cache must match the transformer's config")
        if captures is not None:
            captures = list(captures)
            if len(captures) != len(caches):
                raise ConfigError("need one capture per session")
        lengths = np.array([len(cache) for cache in caches], dtype=np.intp)
        if int(lengths.max()) + 1 > config.max_context:
            raise ConfigError(
                f"context {int(lengths.max()) + 1} exceeds max {config.max_context}"
            )
        # lint: disable=hot-path -- one (B,)-int vector per decode step, not O(tokens); mutated below while lengths stays pristine
        positions = lengths.copy()
        hidden = self.embed(tokens)  # (B, hidden)
        block = StackedKVCacheBlock.of(caches)
        rows = [capture.extend(1) for capture in captures] if captures is not None else None
        n_rep = config.n_heads // config.n_kv_heads
        new_lens = lengths + 1
        max_len = int(new_lens.max())
        for layer in range(config.n_layers):
            if captures is not None:
                for b, capture in enumerate(captures):
                    capture.write(layer, rows[b], hidden[b : b + 1])
            w = self.weights.layers[layer]
            # One batched projection for all sessions: row b's position is
            # session b's cache length, exactly what compute_qkv applies.
            q, k, v = self.compute_qkv(layer, hidden, positions)
            if block is not None:
                block.append_token(layer, k, v)
                keys, values = block.stacked_kv(layer, max_len)
            else:
                for b, cache in enumerate(caches):
                    cache.append(layer, k[b : b + 1], v[b : b + 1])
                keys, values = self._gather_kv(caches, layer, max_len)
            attn = batched_decode_attention(
                q,
                repeat_kv(keys, n_rep, axis=2),
                repeat_kv(values, n_rep, axis=2),
                new_lens,
            )
            hidden = hidden + merge_heads(attn) @ w.wo
            normed = self._norm(hidden, w.ffn_norm)
            hidden = hidden + ffn_forward(normed, w, config.n_ffn_mats)
        final = self._norm(hidden, self.weights.final_norm)
        return final @ self.weights.lm_head

    def forward_fused(
        self,
        segments: Sequence[np.ndarray],
        caches: Sequence[KVCache],
        captures: Sequence[HiddenCapture] | None = None,
    ) -> np.ndarray:
        """One fused forward over variable-length segments of ``S`` sessions.

        The serving front end's iteration primitive: segment ``s`` is a
        block of new tokens (a SplitFuse prefill chunk, or a single decode
        token) continuing ``caches[s]``'s history.  All segments share the
        dense compute — embedding, per-layer norm + QKV projection, RoPE,
        output projection, FFN, and the final lm_head run as *packed* GEMMs
        over the concatenated ``sum(len(seg))`` rows — while attention runs
        per segment against its own cache, so a single model call replaces
        the serial per-session prefill loop ``chat_rounds`` used to run.
        Single-token segments take the same decode attention fast path as a
        serial ``forward``.

        Per-segment hidden states land in ``captures[s]`` exactly as a
        serial ``forward(seg, caches[s], capture=captures[s])`` would write
        them, so the HCache saving path is unchanged.

        Returns ``(S, vocab)`` logits — for each segment, the next-token
        logits of its *last* row.  Rows of segments that have not yet
        reached the end of their prompt are computed but not returned
        (their argmax is meaningless mid-prompt); the front end tracks
        which chunks complete a prompt.

        **Equivalence contract:** the same :data:`BATCHED_DECODE_ATOL`
        band as :meth:`decode_batch`, for the same reason — elementwise
        stages (norm, RoPE, softmax, residuals, attention) are per-row /
        per-segment and bit-identical to the serial path, while the packed
        GEMMs' BLAS M-blocking (M=sum of segment lengths vs per-session M)
        rounds differently in the last ulps.
        """
        config = self.config
        segments = [np.asarray(seg) for seg in segments]
        caches = list(caches)
        if not segments:
            raise ConfigError("forward_fused needs at least one segment")
        if len(caches) != len(segments):
            raise ConfigError(
                f"{len(segments)} segments for {len(caches)} caches; need one each"
            )
        for seg in segments:
            if seg.ndim != 1 or seg.size == 0:
                raise ConfigError("every segment must be a non-empty 1-D token array")
        if len({id(cache) for cache in caches}) != len(caches):
            raise ConfigError("the same cache cannot serve two fused segments")
        for cache in caches:
            if cache.config != config:
                raise ConfigError("every cache must match the transformer's config")
        if captures is not None:
            captures = list(captures)
            if len(captures) != len(caches):
                raise ConfigError("need one capture per segment")
        starts = [len(cache) for cache in caches]
        for seg, start in zip(segments, starts):
            if start + seg.size > config.max_context:
                raise ConfigError(
                    f"context {start + seg.size} exceeds max {config.max_context}"
                )
        # Packed row layout: segment s owns rows [bounds[s], bounds[s+1]).
        sizes = [seg.size for seg in segments]
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        positions = np.concatenate(
            [np.arange(start, start + size) for start, size in zip(starts, sizes)]
        )
        hidden = self.embed(np.concatenate(segments))
        rows = [capture.extend(size) for capture, size in zip(captures, sizes)] if (
            captures is not None
        ) else None
        n_rep = config.n_heads // config.n_kv_heads
        n_total = int(bounds[-1])
        attn_out = np.empty(
            (n_total, config.n_heads, config.head_dim), dtype=np.float32
        )
        for layer in range(config.n_layers):
            if captures is not None:
                for s, capture in enumerate(captures):
                    capture.write(layer, rows[s], hidden[bounds[s] : bounds[s + 1]])
            w = self.weights.layers[layer]
            # One packed projection: row r's RoPE angle comes from its own
            # absolute position, exactly what compute_qkv applies rowwise.
            q, k, v = self.compute_qkv(layer, hidden, positions)
            for s, cache in enumerate(caches):
                o0, o1 = int(bounds[s]), int(bounds[s + 1])
                cache.append(layer, k[o0:o1], v[o0:o1])
                keys, values = cache.get(layer)
                attn_out[o0:o1] = scaled_dot_product_attention(
                    q[o0:o1],
                    repeat_kv(keys, n_rep),
                    repeat_kv(values, n_rep),
                    query_offset=starts[s],
                )
            hidden = hidden + merge_heads(attn_out) @ w.wo
            normed = self._norm(hidden, w.ffn_norm)
            hidden = hidden + ffn_forward(normed, w, config.n_ffn_mats)
        last_rows = hidden[bounds[1:] - 1]
        final = self._norm(last_rows, self.weights.final_norm)
        return final @ self.weights.lm_head

    def _gather_kv(
        self, caches: "list[KVCache]", layer: int, max_len: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Copy per-session K/V views into one zero-padded stack.

        The batched-decode fallback for caches that do not share a
        :class:`StackedKVCacheBlock`.  Zero padding keeps the masked
        attention's probability-0 tail terms finite and exactly zero,
        matching the stacked path bit for bit.
        """
        config = self.config
        k_pad = np.zeros(
            (len(caches), max_len, config.n_kv_heads, config.head_dim), dtype=np.float32
        )
        v_pad = np.zeros_like(k_pad)
        for b, cache in enumerate(caches):
            keys, values = cache.get(layer)
            k_pad[b, : keys.shape[0]] = keys
            v_pad[b, : values.shape[0]] = values
        return k_pad, v_pad

    # ------------------------------------------------------------------
    # restoration helpers
    # ------------------------------------------------------------------

    def restore_cache_from_hidden(
        self,
        hidden_states: list[np.ndarray] | np.ndarray | HiddenCapture,
        positions: np.ndarray | None = None,
    ) -> KVCache:
        """Rebuild a full KV cache from per-layer hidden states.

        ``hidden_states[L]`` must be the ``(n, hidden)`` residual input of
        layer ``L`` for the whole history (what ``capture_hidden`` returns
        and what the storage manager persists); a :class:`HiddenCapture`
        or a pre-stacked ``(n_layers, n, hidden)`` array is used as-is.
        All layers are projected through one batched norm + GEMM pass and
        the results are installed into the cache without a copy.
        """
        if isinstance(hidden_states, HiddenCapture):
            blocks: np.ndarray | list[np.ndarray] = hidden_states.stacked()
            n_layers, n = blocks.shape[:2]
        elif isinstance(hidden_states, np.ndarray) and hidden_states.ndim == 3:
            blocks = hidden_states
            n_layers, n = blocks.shape[:2]
        else:
            blocks = list(hidden_states)
            n_layers = len(blocks)
            n = blocks[0].shape[0] if blocks else 0
        if n_layers != self.config.n_layers:
            raise ConfigError(
                f"need hidden states for all {self.config.n_layers} layers, "
                f"got {n_layers}"
            )
        pos = np.arange(n) if positions is None else np.asarray(positions)
        k, v = self.project_kv_all(blocks, pos)
        cache = KVCache(self.config)
        cache.install_all(k, v)
        return cache

    def recompute_prefix(
        self, tokens: np.ndarray, n_prefix_layers: int
    ) -> tuple[KVCache, np.ndarray]:
        """Token-recompute the first ``n_prefix_layers`` layers.

        Used by the bubble-free scheduler's recompute-complement mode: the
        prefix layers' KV comes from a partial forward pass over the
        original tokens.  Returns a cache filled for the prefix layers only
        plus the hidden states entering layer ``n_prefix_layers``.
        """
        if not 0 <= n_prefix_layers <= self.config.n_layers:
            raise ConfigError(f"prefix layer count {n_prefix_layers} out of range")
        tokens = np.asarray(tokens)
        positions = np.arange(tokens.size)
        cache = KVCache(self.config)
        cache.reserve(tokens.size)
        hidden = self.embed(tokens)
        for layer in range(n_prefix_layers):
            hidden = self.layer_forward(layer, hidden, cache, positions)
        return cache, hidden

    def generate(
        self,
        prompt: np.ndarray,
        n_new_tokens: int,
        kv_cache: KVCache | None = None,
        capture_hidden: bool = False,
    ) -> tuple[list[int], KVCache, list[np.ndarray] | None]:
        """Greedy generation, optionally capturing all hidden states.

        Returns the generated token ids, the final cache, and — when
        capturing — per-layer hidden states covering prompt plus generated
        tokens in position order (zero-copy views of one capture buffer).
        Both the cache and the capture are preallocated for the final
        length, so each decode step costs O(1) state management.
        """
        prompt = np.asarray(prompt)
        cache = kv_cache if kv_cache is not None else KVCache(self.config)
        cache.reserve(len(cache) + prompt.size + n_new_tokens)
        capture: HiddenCapture | None = None
        if capture_hidden:
            capture = HiddenCapture(self.config.n_layers, self.config.hidden_size)
            capture.reserve(prompt.size + n_new_tokens)
        result = self.forward(prompt, cache, capture=capture)
        tokens: list[int] = []
        logits = result.logits[-1]
        for _ in range(n_new_tokens):
            token = int(np.argmax(logits))
            tokens.append(token)
            step = self.forward(np.array([token]), cache, capture=capture)
            logits = step.logits[-1]
        return tokens, cache, capture.views() if capture is not None else None
