"""Naive O(n^2) reference implementations of the save/restore hot path.

These are the pre-optimization semantics of the KV cache, hidden-state
capture, and restoration loop, kept verbatim so that

- property tests can assert the amortized-growth buffers are **bit-exact**
  against the original concatenate-based behaviour, and
- ``benchmarks/bench_hotpath.py`` can measure the speedup of the O(n)
  hot path against the quadratic baseline forever, not just once.

Nothing in the serving stack should import this module for real work.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, StateError
from repro.models.config import ModelConfig
from repro.models.tensor_ops import causal_mask, softmax


def naive_scaled_dot_product_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    query_offset: int,
) -> np.ndarray:
    """The original einsum attention without the decode fast path.

    Builds the causal mask and runs the full einsum contraction even for
    single-token decode steps.  ``bench_hotpath.py`` patches this into the
    transformer to reproduce the pre-refactor decode cost.
    """
    n_q, n_heads, head_dim = queries.shape
    n_k = keys.shape[0]
    if keys.shape != values.shape:
        raise ConfigError("keys and values must share a shape")
    if keys.shape[1] != n_heads:
        raise ConfigError(f"key heads {keys.shape[1]} mismatch query heads {n_heads}")
    scale = 1.0 / np.sqrt(head_dim)
    scores = np.einsum("qhd,khd->hqk", queries, keys) * scale
    mask = causal_mask(n_q, n_k, query_offset)[None, :, :]
    scores = np.where(mask, scores, np.float32(-1e30))
    probs = softmax(scores, axis=-1)
    out = np.einsum("hqk,khd->qhd", probs, values)
    return out.astype(np.float32)


class NaiveKVCache:
    """The original concatenate-on-append KV cache.

    Grows every layer's K/V by ``np.concatenate`` (an O(history) copy per
    append) and recomputes the cross-layer length agreement check with a
    set comprehension on every ``__len__``.  API-compatible with
    :class:`repro.models.kv_cache.KVCache` for everything the transformer
    forward pass and the tests exercise.
    """

    def __init__(self, config: ModelConfig) -> None:
        self.config = config
        shape = (0, config.n_kv_heads, config.head_dim)
        self._keys = [np.empty(shape, dtype=np.float32) for _ in range(config.n_layers)]
        self._values = [np.empty(shape, dtype=np.float32) for _ in range(config.n_layers)]

    def __len__(self) -> int:
        lengths = {k.shape[0] for k in self._keys}
        if len(lengths) != 1:
            raise StateError(f"layers disagree on cached length: {sorted(lengths)}")
        return lengths.pop()

    def layer_len(self, layer: int) -> int:
        return self._keys[layer].shape[0]

    def _check_layer(self, layer: int) -> None:
        if not 0 <= layer < self.config.n_layers:
            raise ConfigError(f"layer {layer} out of range")

    def _check_shape(self, tensor: np.ndarray, name: str) -> np.ndarray:
        tensor = np.asarray(tensor, dtype=np.float32)
        if tensor.ndim != 3 or tensor.shape[1:] != (self.config.n_kv_heads, self.config.head_dim):
            raise ConfigError(
                f"{name} must be (n, {self.config.n_kv_heads}, {self.config.head_dim}), "
                f"got {tensor.shape}"
            )
        return tensor

    def append(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        self._check_layer(layer)
        keys = self._check_shape(keys, "keys")
        values = self._check_shape(values, "values")
        if keys.shape[0] != values.shape[0]:
            raise ConfigError("keys and values must cover the same tokens")
        self._keys[layer] = np.concatenate([self._keys[layer], keys], axis=0)
        self._values[layer] = np.concatenate([self._values[layer], values], axis=0)

    def install(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        self._check_layer(layer)
        keys = self._check_shape(keys, "keys")
        values = self._check_shape(values, "values")
        if keys.shape[0] != values.shape[0]:
            raise ConfigError("keys and values must cover the same tokens")
        self._keys[layer] = np.array(keys, copy=True)
        self._values[layer] = np.array(values, copy=True)

    def get(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        self._check_layer(layer)
        return self._keys[layer], self._values[layer]

    def truncate(self, n_tokens: int) -> None:
        if n_tokens < 0:
            raise ConfigError("cannot truncate to a negative length")
        for layer in range(self.config.n_layers):
            self._keys[layer] = self._keys[layer][:n_tokens]
            self._values[layer] = self._values[layer][:n_tokens]

    def clear(self) -> None:
        self.truncate(0)

    def packed_layer(self, layer: int) -> np.ndarray:
        keys, values = self.get(layer)
        n = keys.shape[0]
        flat_k = keys.reshape(n, -1)
        flat_v = values.reshape(n, -1)
        return np.concatenate([flat_k, flat_v], axis=1)

    def install_packed(self, layer: int, packed: np.ndarray) -> None:
        packed = np.asarray(packed, dtype=np.float32)
        kv_size = self.config.kv_size
        if packed.ndim != 2 or packed.shape[1] != 2 * kv_size:
            raise ConfigError(f"packed KV must be (n, {2 * kv_size}), got {packed.shape}")
        n = packed.shape[0]
        shape = (n, self.config.n_kv_heads, self.config.head_dim)
        self.install(layer, packed[:, :kv_size].reshape(shape), packed[:, kv_size:].reshape(shape))

    def nbytes(self) -> int:
        return sum(k.nbytes + v.nbytes for k, v in zip(self._keys, self._values))

    def equals(self, other, atol: float = 0.0) -> bool:
        if self.config.n_layers != other.config.n_layers:
            return False
        for layer in range(self.config.n_layers):
            k1, v1 = self.get(layer)
            k2, v2 = other.get(layer)
            if k1.shape != k2.shape or v1.shape != v2.shape:
                return False
            if atol == 0.0:
                if not (np.array_equal(k1, k2) and np.array_equal(v1, v2)):
                    return False
            else:
                if not (np.allclose(k1, k2, atol=atol) and np.allclose(v1, v2, atol=atol)):
                    return False
        return True


def naive_generate_capture(
    model,
    prompt: np.ndarray,
    n_new_tokens: int,
    kv_cache=None,
) -> tuple[list[int], object, list[np.ndarray]]:
    """The original ``generate(capture_hidden=True)`` accumulation loop.

    Re-concatenates every layer's full captured history on every decode
    step.  Returns ``(tokens, cache, captured)`` exactly like
    :meth:`repro.models.transformer.Transformer.generate`.
    """
    cache = kv_cache if kv_cache is not None else NaiveKVCache(model.config)
    result = model.forward(np.asarray(prompt), cache, capture_hidden=True)
    captured = [np.array(h, copy=True) for h in result.hidden_states]
    tokens: list[int] = []
    logits = result.logits[-1]
    for _ in range(n_new_tokens):
        token = int(np.argmax(logits))
        tokens.append(token)
        step = model.decode_step(token, cache, capture_hidden=True)
        for layer in range(model.config.n_layers):
            captured[layer] = np.concatenate(
                [captured[layer], step.hidden_states[layer]], axis=0
            )
        logits = step.logits[-1]
    return tokens, cache, captured


def naive_restore_cache_from_hidden(
    model, hidden_states: list[np.ndarray], positions: np.ndarray | None = None
) -> NaiveKVCache:
    """The original layer-by-layer restoration loop.

    Projects each layer separately and installs with a defensive copy —
    two fresh allocations per layer.
    """
    if len(hidden_states) != model.config.n_layers:
        raise ConfigError(
            f"need hidden states for all {model.config.n_layers} layers, "
            f"got {len(hidden_states)}"
        )
    n = hidden_states[0].shape[0]
    pos = np.arange(n) if positions is None else np.asarray(positions)
    cache = NaiveKVCache(model.config)
    for layer, hidden in enumerate(hidden_states):
        if hidden.shape[0] != n:
            raise ConfigError("all layers must cover the same tokens")
        k, v = model.project_kv(layer, hidden, pos)
        cache.install(layer, k, v)
    return cache
