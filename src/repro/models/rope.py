"""Rotary position embedding (RoPE) [Su et al., 2024].

HCache's restoration path re-applies RoPE to recomputed keys (§5: "we write
a custom kernel to apply the ROPE position embedding to the recomputed KV
values"), so the reproduction implements it exactly: restoration must know
each token's absolute position to regenerate a bit-identical key.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def rope_frequencies(head_dim: int, base: float = 10000.0) -> np.ndarray:
    """Inverse frequencies for each rotary pair, shape ``(head_dim // 2,)``."""
    if head_dim <= 0 or head_dim % 2 != 0:
        raise ConfigError(f"RoPE head_dim must be positive and even, got {head_dim}")
    exponents = np.arange(0, head_dim, 2, dtype=np.float64) / head_dim
    return (base**-exponents).astype(np.float32)


def rope_angles(positions: np.ndarray, head_dim: int, base: float = 10000.0) -> np.ndarray:
    """Rotation angles, shape ``(n_tokens, head_dim // 2)``."""
    positions = np.asarray(positions, dtype=np.float32)
    if positions.ndim != 1:
        raise ConfigError("positions must be a 1-D array of absolute token positions")
    return positions[:, None] * rope_frequencies(head_dim, base)[None, :]


def rope_cos_sin(
    positions: np.ndarray, head_dim: int, base: float = 10000.0
) -> tuple[np.ndarray, np.ndarray]:
    """Precomputed rotation terms, each ``(n_tokens, 1, head_dim // 2)``.

    The restoration hot path rotates every layer's keys with the same
    positions; computing cos/sin once amortizes the trigonometry across
    layers.
    """
    angles = rope_angles(positions, head_dim, base)
    return np.cos(angles)[:, None, :], np.sin(angles)[:, None, :]


def rope_rotate_into(
    x: np.ndarray, cos: np.ndarray, sin: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """Rotate ``x`` by precomputed cos/sin terms, writing into ``out``.

    Bit-identical to :func:`apply_rope` (the per-element arithmetic is the
    same) but with no concatenate and no fresh allocation — the
    restoration pipeline rotates projected keys straight into the KV
    cache's backing storage.  ``out`` must not alias ``x``.
    """
    if x.shape != out.shape:
        raise ConfigError(f"out shape {out.shape} mismatches input {x.shape}")
    if np.may_share_memory(x, out):
        raise ConfigError("rope_rotate_into requires out not to alias the input")
    half = x.shape[-1] // 2
    x1, x2 = x[..., :half], x[..., half:]
    r1, r2 = out[..., :half], out[..., half:]
    np.multiply(x1, cos, out=r1)
    r1 -= x2 * sin
    np.multiply(x1, sin, out=r2)
    r2 += x2 * cos
    return out


def apply_rope(x: np.ndarray, positions: np.ndarray, base: float = 10000.0) -> np.ndarray:
    """Rotate query/key vectors by their position-dependent angles.

    Args:
        x: Array of shape ``(n_tokens, n_heads, head_dim)``.
        positions: Absolute position of each token, shape ``(n_tokens,)``.
        base: RoPE base frequency.

    Returns:
        Rotated array of the same shape and dtype as ``x``.  Uses the
        half-split ("rotate half") convention of Llama2.
    """
    if x.ndim != 3:
        raise ConfigError(f"expected (tokens, heads, head_dim), got shape {x.shape}")
    n_tokens, _, head_dim = x.shape
    positions = np.asarray(positions)
    if positions.shape != (n_tokens,):
        raise ConfigError(
            f"positions shape {positions.shape} mismatches token count {n_tokens}"
        )
    cos, sin = rope_cos_sin(positions, head_dim, base)  # each (n, 1, hd/2)
    half = head_dim // 2
    x1, x2 = x[..., :half], x[..., half:]
    rotated = np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1)
    return rotated.astype(x.dtype)
