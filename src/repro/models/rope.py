"""Rotary position embedding (RoPE) [Su et al., 2024].

HCache's restoration path re-applies RoPE to recomputed keys (§5: "we write
a custom kernel to apply the ROPE position embedding to the recomputed KV
values"), so the reproduction implements it exactly: restoration must know
each token's absolute position to regenerate a bit-identical key.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def rope_frequencies(head_dim: int, base: float = 10000.0) -> np.ndarray:
    """Inverse frequencies for each rotary pair, shape ``(head_dim // 2,)``."""
    if head_dim <= 0 or head_dim % 2 != 0:
        raise ConfigError(f"RoPE head_dim must be positive and even, got {head_dim}")
    exponents = np.arange(0, head_dim, 2, dtype=np.float64) / head_dim
    return (base**-exponents).astype(np.float32)


def rope_angles(positions: np.ndarray, head_dim: int, base: float = 10000.0) -> np.ndarray:
    """Rotation angles, shape ``(n_tokens, head_dim // 2)``."""
    positions = np.asarray(positions, dtype=np.float32)
    if positions.ndim != 1:
        raise ConfigError("positions must be a 1-D array of absolute token positions")
    return positions[:, None] * rope_frequencies(head_dim, base)[None, :]


def rope_cos_sin(
    positions: np.ndarray, head_dim: int, base: float = 10000.0
) -> tuple[np.ndarray, np.ndarray]:
    """Precomputed rotation terms, each ``(n_tokens, 1, head_dim // 2)``.

    The restoration hot path rotates every layer's keys with the same
    positions; computing cos/sin once amortizes the trigonometry across
    layers.
    """
    angles = rope_angles(positions, head_dim, base)
    return np.cos(angles)[:, None, :], np.sin(angles)[:, None, :]


def rope_rotate_into(
    x: np.ndarray, cos: np.ndarray, sin: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """Rotate ``x`` by precomputed cos/sin terms, writing into ``out``.

    Bit-identical to :func:`apply_rope` (the per-element arithmetic is the
    same) but with no concatenate and no fresh output allocation.  The
    chunk-streamed restore uses the faster full-width formulation
    (:func:`rope_rotate_fullwidth_into`); this half-split variant remains
    the simplest out-of-place rotation for callers without a workspace.
    ``out`` must not alias ``x``.
    """
    if x.shape != out.shape:
        raise ConfigError(f"out shape {out.shape} mismatches input {x.shape}")
    if np.may_share_memory(x, out):
        raise ConfigError("rope_rotate_into requires out not to alias the input")
    half = x.shape[-1] // 2
    x1, x2 = x[..., :half], x[..., half:]
    r1, r2 = out[..., :half], out[..., half:]
    np.multiply(x1, cos, out=r1)
    r1 -= x2 * sin
    np.multiply(x1, sin, out=r2)
    r2 += x2 * cos
    return out


def rope_rotation_tables(
    positions: np.ndarray,
    head_dim: int,
    n_heads: int = 1,
    base: float = 10000.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Full-width rotation tables for :func:`rope_rotate_fullwidth_into`.

    Returns ``(C, S)`` of shape ``(n_tokens, n_heads, head_dim)`` with
    ``C = [cos | cos]`` and ``S = [-sin | sin]`` along the last axis.
    Materializing the head broadcast once per restore turns the rotation
    into three contiguous full-width vector ops instead of six strided
    half-width broadcast passes — the dominant elementwise cost of the
    projection before this fusion.
    """
    if n_heads <= 0:
        raise ConfigError("n_heads must be positive")
    cos, sin = rope_cos_sin(positions, head_dim, base)  # each (n, 1, head_dim // 2)
    n = cos.shape[0]
    half = head_dim // 2
    c = np.empty((n, n_heads, head_dim), dtype=np.float32)
    s = np.empty_like(c)
    c[..., :half] = cos
    c[..., half:] = cos
    np.negative(sin, out=s[..., :half])
    s[..., half:] = sin
    return c, s


def rope_rotate_fullwidth_into(
    x: np.ndarray, c: np.ndarray, s: np.ndarray, out: np.ndarray, swap: np.ndarray
) -> np.ndarray:
    """Rotation as ``out = x * C + swap_halves(x) * S`` — three contiguous
    full-width passes plus one half-swap copy.

    Bit-identical to :func:`rope_rotate_into` / :func:`apply_rope`:
    the first half is ``x1 * cos + x2 * (-sin)`` — IEEE multiplication is
    sign-symmetric, so ``x2 * (-sin) == -(x2 * sin)`` exactly, and adding
    a negated product equals the subtraction — and the second half is
    ``x2 * cos + x1 * sin``, the same two products summed in the other
    order (IEEE addition is commutative).  ``swap`` is a full-width
    scratch buffer of ``x``'s shape; ``out`` must not alias ``x``.
    """
    if x.shape != out.shape or x.shape != swap.shape:
        raise ConfigError(
            f"out {out.shape} and swap {swap.shape} must match input {x.shape}"
        )
    if np.may_share_memory(x, out):
        raise ConfigError("rope_rotate_fullwidth_into requires out not to alias the input")
    if np.may_share_memory(swap, x) or np.may_share_memory(swap, out):
        raise ConfigError("rope_rotate_fullwidth_into requires a non-aliasing swap buffer")
    half = x.shape[-1] // 2
    swap[..., :half] = x[..., half:]
    swap[..., half:] = x[..., :half]
    np.multiply(x, c, out=out)
    np.multiply(swap, s, out=swap)
    np.add(out, swap, out=out)
    return out


def apply_rope(x: np.ndarray, positions: np.ndarray, base: float = 10000.0) -> np.ndarray:
    """Rotate query/key vectors by their position-dependent angles.

    Args:
        x: Array of shape ``(n_tokens, n_heads, head_dim)``.
        positions: Absolute position of each token, shape ``(n_tokens,)``.
        base: RoPE base frequency.

    Returns:
        Rotated array of the same shape and dtype as ``x``.  Uses the
        half-split ("rotate half") convention of Llama2.
    """
    if x.ndim != 3:
        raise ConfigError(f"expected (tokens, heads, head_dim), got shape {x.shape}")
    n_tokens, _, head_dim = x.shape
    positions = np.asarray(positions)
    if positions.shape != (n_tokens,):
        raise ConfigError(
            f"positions shape {positions.shape} mismatches token count {n_tokens}"
        )
    cos, sin = rope_cos_sin(positions, head_dim, base)  # each (n, 1, hd/2)
    half = head_dim // 2
    x1, x2 = x[..., :half], x[..., half:]
    rotated = np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1)
    return rotated.astype(x.dtype)
