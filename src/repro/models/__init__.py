"""Transformer model substrate: configs for the evaluated LLMs plus a real
numpy implementation used to validate HCache's lossless restoration."""

from repro.models.config import FP16_BYTES, MODELS, ModelConfig, model_preset
from repro.models.hidden_capture import HiddenCapture
from repro.models.kv_cache import KVCache, StackedKVCacheBlock
from repro.models.sampler import greedy, sample_temperature, sample_top_k
from repro.models.transformer import (
    BATCHED_DECODE_ATOL,
    ForwardResult,
    ProjectionStats,
    RestoreWorkspace,
    Transformer,
)
from repro.models.weights import LayerWeights, ModelWeights, init_weights

__all__ = [
    "BATCHED_DECODE_ATOL",
    "FP16_BYTES",
    "MODELS",
    "ForwardResult",
    "HiddenCapture",
    "KVCache",
    "StackedKVCacheBlock",
    "LayerWeights",
    "ModelConfig",
    "ModelWeights",
    "ProjectionStats",
    "RestoreWorkspace",
    "Transformer",
    "greedy",
    "init_weights",
    "model_preset",
    "sample_temperature",
    "sample_top_k",
]
