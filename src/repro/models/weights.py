"""Deterministic weight generation for the numpy transformer.

Weights are sampled from a seeded generator with a scaled-Gaussian init so
tiny models produce well-behaved activations over hundreds of decode steps.
Determinism matters: correctness tests compare interrupted-and-restored
runs against uninterrupted ones, so the same ``(config, seed)`` pair must
always yield the same model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.config import ModelConfig


@dataclass
class LayerWeights:
    """Parameters of one transformer layer.

    Attributes:
        wq, wk, wv: Attention projections, ``(hidden, hidden)`` /
            ``(hidden, kv_size)``; applied as ``x @ w``.
        wo: Output projection ``(hidden, hidden)``.
        attn_norm: Pre-attention norm weight ``(hidden,)``.
        ffn_norm: Pre-FFN norm weight ``(hidden,)``.
        w_gate: SwiGLU gate projection (``None`` for 2-matrix FFNs).
        w_up: First FFN projection ``(hidden, ffn_hidden)``.
        w_down: Second FFN projection ``(ffn_hidden, hidden)``.
    """

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    attn_norm: np.ndarray
    ffn_norm: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray
    w_gate: np.ndarray | None = None


@dataclass
class ModelWeights:
    """All parameters of a model.

    Attributes:
        embedding: Token embedding table ``(vocab, hidden)``.
        layers: Per-layer weights.
        final_norm: Weight of the norm before the LM head ``(hidden,)``.
        lm_head: Output projection ``(hidden, vocab)``.
    """

    embedding: np.ndarray
    layers: list[LayerWeights] = field(default_factory=list)
    final_norm: np.ndarray = field(default_factory=lambda: np.ones(1, dtype=np.float32))
    lm_head: np.ndarray = field(default_factory=lambda: np.zeros((1, 1), dtype=np.float32))


def _dense(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    scale = 1.0 / np.sqrt(fan_in)
    return rng.normal(0.0, scale, size=(fan_in, fan_out)).astype(np.float32)


def init_weights(config: ModelConfig, seed: int = 0) -> ModelWeights:
    """Sample a deterministic set of weights for ``config``."""
    rng = np.random.default_rng(seed)
    d = config.hidden_size
    kv = config.kv_size
    ffn = config.ffn_hidden_size
    layers = []
    for _ in range(config.n_layers):
        layers.append(
            LayerWeights(
                wq=_dense(rng, d, d),
                wk=_dense(rng, d, kv),
                wv=_dense(rng, d, kv),
                wo=_dense(rng, d, d),
                attn_norm=np.ones(d, dtype=np.float32),
                ffn_norm=np.ones(d, dtype=np.float32),
                w_up=_dense(rng, d, ffn),
                w_down=_dense(rng, ffn, d),
                w_gate=_dense(rng, d, ffn) if config.n_ffn_mats == 3 else None,
            )
        )
    embedding = rng.normal(0.0, 0.02, size=(config.vocab_size, d)).astype(np.float32)
    return ModelWeights(
        embedding=embedding,
        layers=layers,
        final_norm=np.ones(d, dtype=np.float32),
        lm_head=_dense(rng, d, config.vocab_size),
    )
