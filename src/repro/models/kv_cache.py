"""Per-layer KV cache with exact content semantics.

The cache stores keys and values per layer as ``(n_tokens, n_kv_heads,
head_dim)`` arrays.  It supports the three ways state enters it in this
reproduction: normal prefill/decode appends, bulk installation from a
restoration (HCache projection, KV offload fetch, or prefix recompute),
and truncation for eviction experiments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, StateError
from repro.models.config import ModelConfig


class KVCache:
    """Key/value tensors for every layer of one sequence."""

    def __init__(self, config: ModelConfig) -> None:
        self.config = config
        shape = (0, config.n_kv_heads, config.head_dim)
        self._keys = [np.empty(shape, dtype=np.float32) for _ in range(config.n_layers)]
        self._values = [np.empty(shape, dtype=np.float32) for _ in range(config.n_layers)]

    def __len__(self) -> int:
        """Token count of the sequence (equal across layers)."""
        lengths = {k.shape[0] for k in self._keys}
        if len(lengths) != 1:
            raise StateError(f"layers disagree on cached length: {sorted(lengths)}")
        return lengths.pop()

    def layer_len(self, layer: int) -> int:
        return self._keys[layer].shape[0]

    def _check_layer(self, layer: int) -> None:
        if not 0 <= layer < self.config.n_layers:
            raise ConfigError(f"layer {layer} out of range")

    def _check_shape(self, tensor: np.ndarray, name: str) -> np.ndarray:
        tensor = np.asarray(tensor, dtype=np.float32)
        if tensor.ndim != 3 or tensor.shape[1:] != (self.config.n_kv_heads, self.config.head_dim):
            raise ConfigError(
                f"{name} must be (n, {self.config.n_kv_heads}, {self.config.head_dim}), "
                f"got {tensor.shape}"
            )
        return tensor

    def append(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Append newly computed K/V rows for one layer."""
        self._check_layer(layer)
        keys = self._check_shape(keys, "keys")
        values = self._check_shape(values, "values")
        if keys.shape[0] != values.shape[0]:
            raise ConfigError("keys and values must cover the same tokens")
        self._keys[layer] = np.concatenate([self._keys[layer], keys], axis=0)
        self._values[layer] = np.concatenate([self._values[layer], values], axis=0)

    def install(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Replace one layer's content wholesale (restoration path)."""
        self._check_layer(layer)
        keys = self._check_shape(keys, "keys")
        values = self._check_shape(values, "values")
        if keys.shape[0] != values.shape[0]:
            raise ConfigError("keys and values must cover the same tokens")
        self._keys[layer] = np.array(keys, copy=True)
        self._values[layer] = np.array(values, copy=True)

    def get(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(keys, values)`` views for one layer."""
        self._check_layer(layer)
        return self._keys[layer], self._values[layer]

    def truncate(self, n_tokens: int) -> None:
        """Drop cached state beyond ``n_tokens`` on every layer."""
        if n_tokens < 0:
            raise ConfigError("cannot truncate to a negative length")
        for layer in range(self.config.n_layers):
            self._keys[layer] = self._keys[layer][:n_tokens]
            self._values[layer] = self._values[layer][:n_tokens]

    def clear(self) -> None:
        """Evict everything (state moves to host storage in HCache)."""
        self.truncate(0)

    def packed_layer(self, layer: int) -> np.ndarray:
        """One layer's K and V concatenated per token: ``(n, 2 * kv_size)``.

        This is the on-storage format for KV-offloaded layers: K rows then
        V rows, flattened per token.
        """
        keys, values = self.get(layer)
        n = keys.shape[0]
        flat_k = keys.reshape(n, -1)
        flat_v = values.reshape(n, -1)
        return np.concatenate([flat_k, flat_v], axis=1)

    def install_packed(self, layer: int, packed: np.ndarray) -> None:
        """Inverse of :meth:`packed_layer`."""
        packed = np.asarray(packed, dtype=np.float32)
        kv_size = self.config.kv_size
        if packed.ndim != 2 or packed.shape[1] != 2 * kv_size:
            raise ConfigError(f"packed KV must be (n, {2 * kv_size}), got {packed.shape}")
        n = packed.shape[0]
        shape = (n, self.config.n_kv_heads, self.config.head_dim)
        self.install(layer, packed[:, :kv_size].reshape(shape), packed[:, kv_size:].reshape(shape))

    def nbytes(self) -> int:
        """Total cached bytes across layers (at the array dtype width)."""
        return sum(k.nbytes + v.nbytes for k, v in zip(self._keys, self._values))

    def equals(self, other: "KVCache", atol: float = 0.0) -> bool:
        """Exact (default) or tolerant comparison with another cache."""
        if self.config.n_layers != other.config.n_layers:
            return False
        for layer in range(self.config.n_layers):
            k1, v1 = self.get(layer)
            k2, v2 = other.get(layer)
            if k1.shape != k2.shape or v1.shape != v2.shape:
                return False
            if atol == 0.0:
                if not (np.array_equal(k1, k2) and np.array_equal(v1, v2)):
                    return False
            else:
                if not (np.allclose(k1, k2, atol=atol) and np.allclose(v1, v2, atol=atol)):
                    return False
        return True
