"""Per-layer KV cache with exact content semantics and O(1) appends.

The cache stores keys and values per layer as ``(n_tokens, n_kv_heads,
head_dim)`` arrays.  It supports the three ways state enters it in this
reproduction: normal prefill/decode appends, bulk installation from a
restoration (HCache projection, KV offload fetch, or prefix recompute),
and truncation for eviction experiments.

Storage layout: all layers share two 4-D backing buffers of shape
``(n_layers, capacity, n_kv_heads, head_dim)`` that grow by amortized
doubling, so ``append`` is an O(block) slice write instead of an
O(history) ``np.concatenate`` — the difference between O(n) and O(n^2)
decode over a whole conversation.  ``get`` returns zero-copy views of the
live prefix; restoration paths can write straight into the backing
buffers (:meth:`KVCache.install_view`) or donate whole pre-projected
tensors (:meth:`KVCache.install_all`) without any defensive copy.

View semantics: views returned by :meth:`get` alias the backing buffer.
An in-capacity ``append`` only writes past the live prefix, so earlier
views keep their content; an ``append`` that triggers a capacity-growth
reallocation detaches them to a stale snapshot of the old buffer, and
``install``/``truncate`` repoint the live region in place.  Callers that
need a durable, current snapshot across any of those operations must
copy, exactly as a real serving system snapshots KV pages before reuse.

Batched serving: several same-config caches can share one stacked
``(n_slots, n_layers, capacity, n_kv_heads, head_dim)`` backing via
:class:`StackedKVCacheBlock`, which gives the batched decode path
zero-copy ``(B, n_tokens, heads, head_dim)`` views across every session
at once while each per-session :class:`KVCache` keeps its normal API
(its buffers simply become views of one block slot).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, StateError
from repro.models.config import ModelConfig
from repro.models.growth import grown_capacity


class KVCache:
    """Key/value tensors for every layer of one sequence."""

    def __init__(self, config: ModelConfig) -> None:
        self.config = config
        self._n_layers = config.n_layers
        self._row_shape = (config.n_kv_heads, config.head_dim)
        self._k = np.empty((self._n_layers, 0, *self._row_shape), dtype=np.float32)
        self._v = np.empty_like(self._k)
        self._lens = [0] * self._n_layers
        #: length -> number of layers currently at that length.  Keeping the
        #: histogram as an invariant makes ``__len__`` (called on every
        #: forward pass) O(1) while still detecting layer disagreement.
        self._len_counts: dict[int, int] = {0: self._n_layers}
        #: Set when this cache's buffers are views of one slot of a
        #: :class:`StackedKVCacheBlock`; capacity management is then
        #: delegated to the block (which repoints the views on growth).
        self._block: "StackedKVCacheBlock | None" = None
        self._block_slot = -1

    # ------------------------------------------------------------------
    # lengths
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Token count of the sequence (equal across layers)."""
        if len(self._len_counts) != 1:
            raise StateError(
                f"layers disagree on cached length: {sorted(self._len_counts)}"
            )
        return next(iter(self._len_counts))

    def layer_len(self, layer: int) -> int:
        return self._lens[layer]

    @property
    def capacity(self) -> int:
        """Allocated token capacity shared by every layer."""
        return self._k.shape[1]

    def _set_len(self, layer: int, new_len: int) -> None:
        old = self._lens[layer]
        if new_len == old:
            return
        self._lens[layer] = new_len
        counts = self._len_counts
        remaining = counts[old] - 1
        if remaining:
            counts[old] = remaining
        else:
            del counts[old]
        counts[new_len] = counts.get(new_len, 0) + 1

    def debug_validate(self) -> None:
        """Expensive invariant check (tests / debugging only).

        Recomputes the length histogram from scratch and verifies it
        matches the incrementally maintained one.
        """
        recount: dict[int, int] = {}
        for n in self._lens:
            recount[n] = recount.get(n, 0) + 1
        if recount != self._len_counts:
            raise StateError(
                f"length histogram {self._len_counts} out of sync with {recount}"
            )
        if any(n < 0 or n > self.capacity for n in self._lens):
            raise StateError(f"layer length out of range: {self._lens}")

    # ------------------------------------------------------------------
    # capacity management
    # ------------------------------------------------------------------

    def _ensure_capacity(self, min_capacity: int) -> None:
        cap = self.capacity
        if cap >= min_capacity:
            return
        if self._block is not None:
            # Block-backed: growth must reallocate the whole stacked
            # buffer (and repoint every adopted cache, including this
            # one), so it is the block's job.
            self._block.reserve(min_capacity)
            return
        new_cap = grown_capacity(cap, min_capacity)
        new_k = np.empty((self._n_layers, new_cap, *self._row_shape), dtype=np.float32)
        new_v = np.empty_like(new_k)
        live = max(self._lens, default=0)
        if live:
            new_k[:, :live] = self._k[:, :live]
            new_v[:, :live] = self._v[:, :live]
        self._k = new_k
        self._v = new_v

    def reserve(self, n_tokens: int) -> None:
        """Preallocate capacity for ``n_tokens`` across every layer.

        Callers that know the final context length (restoration, a chat
        round with a fixed output budget) use this to skip the doubling
        reallocations entirely.
        """
        if n_tokens < 0:
            raise ConfigError("cannot reserve a negative capacity")
        self._ensure_capacity(n_tokens)

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------

    def _check_layer(self, layer: int) -> None:
        if not 0 <= layer < self._n_layers:
            raise ConfigError(f"layer {layer} out of range")

    def _check_shape(self, tensor: np.ndarray, name: str) -> np.ndarray:
        tensor = np.asarray(tensor, dtype=np.float32)
        if tensor.ndim != 3 or tensor.shape[1:] != self._row_shape:
            raise ConfigError(
                f"{name} must be (n, {self.config.n_kv_heads}, {self.config.head_dim}), "
                f"got {tensor.shape}"
            )
        return tensor

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def append(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Append newly computed K/V rows for one layer (O(block))."""
        self._check_layer(layer)
        keys = self._check_shape(keys, "keys")
        values = self._check_shape(values, "values")
        if keys.shape[0] != values.shape[0]:
            raise ConfigError("keys and values must cover the same tokens")
        n = self._lens[layer]
        m = keys.shape[0]
        self._ensure_capacity(n + m)
        self._k[layer, n : n + m] = keys
        self._v[layer, n : n + m] = values
        self._set_len(layer, n + m)

    def install(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Replace one layer's content wholesale (restoration path).

        Writes into the preallocated backing buffer — no fresh defensive
        copy is allocated per layer.
        """
        self._check_layer(layer)
        keys = self._check_shape(keys, "keys")
        values = self._check_shape(values, "values")
        if keys.shape[0] != values.shape[0]:
            raise ConfigError("keys and values must cover the same tokens")
        n = keys.shape[0]
        self._ensure_capacity(n)
        self._k[layer, :n] = keys
        self._v[layer, :n] = values
        self._set_len(layer, n)

    def install_view(self, layer: int, n_tokens: int) -> tuple[np.ndarray, np.ndarray]:
        """Size one layer to ``n_tokens`` and return writable K/V views.

        The restoration hot path uses this to project straight into cache
        storage; the previous content of the layer is undefined until the
        caller fills the views.
        """
        self._check_layer(layer)
        if n_tokens < 0:
            raise ConfigError("cannot install a negative token count")
        self._ensure_capacity(n_tokens)
        self._set_len(layer, n_tokens)
        return self._k[layer, :n_tokens], self._v[layer, :n_tokens]

    def install_all(self, keys_all: np.ndarray, values_all: np.ndarray) -> None:
        """Adopt pre-projected K/V for every layer at once, zero-copy.

        ``keys_all``/``values_all`` have shape ``(n_layers, n, n_kv_heads,
        head_dim)``.  Fresh C-contiguous float32 arrays (what the batched
        restoration GEMM produces) become the backing buffers directly;
        anything else is copied once.  The caller must not mutate donated
        arrays afterwards.
        """
        keys_all = np.asarray(keys_all, dtype=np.float32)
        values_all = np.asarray(values_all, dtype=np.float32)
        expected_tail = (self._n_layers, *self._row_shape)
        for name, arr in (("keys", keys_all), ("values", values_all)):
            if arr.ndim != 4 or (arr.shape[0], *arr.shape[2:]) != expected_tail:
                raise ConfigError(
                    f"{name} must be ({self._n_layers}, n, {self._row_shape[0]}, "
                    f"{self._row_shape[1]}), got {arr.shape}"
                )
        if keys_all.shape[1] != values_all.shape[1]:
            raise ConfigError("keys and values must cover the same tokens")
        n = keys_all.shape[1]
        if self._block is not None:
            # Block-backed storage cannot adopt foreign arrays: the
            # stacked buffer is shared with the other slots, so the
            # content is copied into this slot instead.
            self._ensure_capacity(n)
            self._k[:, :n] = keys_all
            self._v[:, :n] = values_all
        else:
            self._k = self._adoptable(keys_all)
            self._v = self._adoptable(values_all)
        self._lens = [n] * self._n_layers
        self._len_counts = {n: self._n_layers}

    @staticmethod
    def _adoptable(arr: np.ndarray) -> np.ndarray:
        if arr.flags["C_CONTIGUOUS"] and arr.flags["OWNDATA"]:
            return arr
        return np.ascontiguousarray(arr)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def get(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(keys, values)`` zero-copy views for one layer."""
        self._check_layer(layer)
        n = self._lens[layer]
        return self._k[layer, :n], self._v[layer, :n]

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------

    def truncate(self, n_tokens: int) -> None:
        """Drop cached state beyond ``n_tokens`` on every layer.

        Capacity is retained; only the live lengths shrink (O(layers)).
        """
        if n_tokens < 0:
            raise ConfigError("cannot truncate to a negative length")
        for layer in range(self._n_layers):
            if self._lens[layer] > n_tokens:
                self._set_len(layer, n_tokens)

    def clear(self) -> None:
        """Evict everything (state moves to host storage in HCache)."""
        self.truncate(0)

    # ------------------------------------------------------------------
    # packed (on-storage) format
    # ------------------------------------------------------------------

    def packed_rows(self, layer: int, start: int, stop: int) -> np.ndarray:
        """K and V of rows ``[start, stop)`` concatenated per token.

        Shape ``(stop - start, 2 * kv_size)`` — K elements then V
        elements, flattened per token.  Packing only the requested rows
        keeps incremental saving O(block) instead of O(history).
        """
        keys, values = self.get(layer)
        if not 0 <= start <= stop <= keys.shape[0]:
            raise ConfigError(
                f"rows [{start}, {stop}) out of range for {keys.shape[0]} cached tokens"
            )
        n = stop - start
        kv_size = self.config.kv_size
        out = np.empty((n, 2 * kv_size), dtype=np.float32)
        out[:, :kv_size] = keys[start:stop].reshape(n, kv_size)
        out[:, kv_size:] = values[start:stop].reshape(n, kv_size)
        return out

    def packed_layer(self, layer: int) -> np.ndarray:
        """One layer's K and V concatenated per token: ``(n, 2 * kv_size)``.

        This is the on-storage format for KV-offloaded layers.
        """
        return self.packed_rows(layer, 0, self._lens[layer])

    def _check_packed(self, packed: np.ndarray) -> np.ndarray:
        packed = np.asarray(packed, dtype=np.float32)
        kv_size = self.config.kv_size
        if packed.ndim != 2 or packed.shape[1] != 2 * kv_size:
            raise ConfigError(f"packed KV must be (n, {2 * kv_size}), got {packed.shape}")
        return packed

    def install_packed(self, layer: int, packed: np.ndarray) -> None:
        """Inverse of :meth:`packed_layer`, writing directly into storage."""
        self._check_layer(layer)
        packed = self._check_packed(packed)
        self.install_view(layer, packed.shape[0])
        self.install_packed_rows(layer, 0, packed)

    def install_packed_rows(self, layer: int, start: int, packed: np.ndarray) -> None:
        """Write packed K|V rows into ``[start, start + n)`` of a layer.

        The rows must lie inside the layer's live region (size it first
        with :meth:`install_view`).  This is the chunk-granular inverse of
        :meth:`packed_rows` — the streamed restore installs each arriving
        granule of a KV-offloaded layer through it, so the packed-layout
        knowledge stays in one place.
        """
        self._check_layer(layer)
        packed = self._check_packed(packed)
        n = packed.shape[0]
        if not 0 <= start <= start + n <= self._lens[layer]:
            raise ConfigError(
                f"rows [{start}, {start + n}) outside the layer's "
                f"{self._lens[layer]} live tokens"
            )
        kv_size = self.config.kv_size
        self._k[layer, start : start + n].reshape(n, kv_size)[...] = packed[:, :kv_size]
        self._v[layer, start : start + n].reshape(n, kv_size)[...] = packed[:, kv_size:]

    def install_packed_head_rows(
        self,
        layer: int,
        start: int,
        packed: np.ndarray,
        head_start: int,
        head_stop: int,
    ) -> None:
        """Write KV heads ``[head_start, head_stop)`` of packed K|V rows.

        The tensor-shard merge primitive: ``packed`` carries *full-width*
        rows (the on-storage layout), but only the named KV-head range
        lands in the cache — each tensor rank of a sharded restore owns a
        disjoint range, so the ranks' installs tile the layer without
        overlap.  Pure strided slice copies, so the installed bytes are
        bit-identical to a full-width :meth:`install_packed_rows` of the
        same rows.  The rows must lie inside the layer's live region
        (size it first with :meth:`install_view`).
        """
        self._check_layer(layer)
        packed = self._check_packed(packed)
        n_kv_heads, head_dim = self._row_shape
        if not 0 <= head_start < head_stop <= n_kv_heads:
            raise ConfigError(
                f"head range [{head_start}, {head_stop}) invalid for "
                f"{n_kv_heads} KV heads"
            )
        n = packed.shape[0]
        if not 0 <= start <= start + n <= self._lens[layer]:
            raise ConfigError(
                f"rows [{start}, {start + n}) outside the layer's "
                f"{self._lens[layer]} live tokens"
            )
        kv_size = self.config.kv_size
        k_heads = packed[:, :kv_size].reshape(n, n_kv_heads, head_dim)
        v_heads = packed[:, kv_size:].reshape(n, n_kv_heads, head_dim)
        rows = slice(start, start + n)
        heads = slice(head_start, head_stop)
        self._k[layer, rows, heads] = k_heads[:, heads]
        self._v[layer, rows, heads] = v_heads[:, heads]

    def install_rows(
        self, layer: int, start: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Write already-split K/V rows into ``[start, start + n)`` of a layer.

        The unpacked sibling of :meth:`install_packed_rows`: block-paged
        restores hold K and V as separate ``(n, n_kv_heads, head_dim)``
        pool views and land them here without packing through a scratch
        buffer first.  The rows must lie inside the layer's live region
        (size it first with :meth:`install_view`).
        """
        self._check_layer(layer)
        keys = self._check_shape(keys, "keys")
        values = self._check_shape(values, "values")
        if keys.shape[0] != values.shape[0]:
            raise ConfigError("keys and values must cover the same tokens")
        n = keys.shape[0]
        if not 0 <= start <= start + n <= self._lens[layer]:
            raise ConfigError(
                f"rows [{start}, {start + n}) outside the layer's "
                f"{self._lens[layer]} live tokens"
            )
        self._k[layer, start : start + n] = keys
        self._v[layer, start : start + n] = values

    # ------------------------------------------------------------------
    # accounting / comparison
    # ------------------------------------------------------------------

    def nbytes(self) -> int:
        """Total live cached bytes across layers (at the array dtype width)."""
        row_bytes = self._k.itemsize * self._row_shape[0] * self._row_shape[1]
        return 2 * row_bytes * sum(self._lens)

    def equals(self, other: "KVCache", atol: float = 0.0) -> bool:
        """Exact (default) or tolerant comparison with another cache."""
        if self.config.n_layers != other.config.n_layers:
            return False
        for layer in range(self.config.n_layers):
            k1, v1 = self.get(layer)
            k2, v2 = other.get(layer)
            if k1.shape != k2.shape or v1.shape != v2.shape:
                return False
            if atol == 0.0:
                if not (np.array_equal(k1, k2) and np.array_equal(v1, v2)):
                    return False
            else:
                if not (np.allclose(k1, k2, atol=atol) and np.allclose(v1, v2, atol=atol)):
                    return False
        return True

    # ------------------------------------------------------------------
    # stacked-block membership
    # ------------------------------------------------------------------

    @property
    def block(self) -> "StackedKVCacheBlock | None":
        """The stacked block backing this cache, or ``None``."""
        return self._block

    def detach(self) -> None:
        """Leave the stacked block, copying live content to private buffers.

        A no-op for caches that are not block-backed.  The block slot is
        released (it keeps its storage until the block grows or is
        dropped, like any evicted page).
        """
        if self._block is None:
            return
        live = max(self._lens, default=0)
        new_k = np.empty((self._n_layers, live, *self._row_shape), dtype=np.float32)
        new_v = np.empty_like(new_k)
        if live:
            new_k[...] = self._k[:, :live]
            new_v[...] = self._v[:, :live]
        self._block.release_slot(self._block_slot)
        self._block = None
        self._block_slot = -1
        self._k = new_k
        self._v = new_v

    def release_block_slot(self) -> None:
        """Leave the stacked block *discarding* this cache's content.

        The eviction path: the GPU copy is being dropped (host storage
        keeps everything), so unlike :meth:`detach` nothing is copied
        out — the slot is released and this cache resets to empty.
        Without this, an evicted session's cache object would keep its
        whole block (every slot) reachable and recopied on growth.
        A no-op for caches that are not block-backed.
        """
        if self._block is None:
            return
        self._block.release_slot(self._block_slot)
        self._block = None
        self._block_slot = -1
        self._k = np.empty((self._n_layers, 0, *self._row_shape), dtype=np.float32)
        self._v = np.empty_like(self._k)
        self._lens = [0] * self._n_layers
        self._len_counts = {0: self._n_layers}


class StackedKVCacheBlock:
    """Shared stacked backing for a batch of same-config KV caches.

    Holds one ``(n_slots, n_layers, capacity, n_kv_heads, head_dim)``
    buffer pair and *adopts* per-session :class:`KVCache` objects into
    its slots: each adopted cache's ``_k``/``_v`` become zero-copy views
    of one slot, so every normal cache operation (append, get, packed
    rows, truncate) keeps working unchanged, while the batched decode
    path reads **all sessions of one layer at once** through
    :meth:`stacked_kv` and appends one token per session with a single
    vectorized write (:meth:`append_token`).

    Growth uses the same amortized-doubling policy as a private cache,
    reallocating the whole stacked buffer and repointing every adopted
    cache — the stacked analog of the documented view-detachment
    semantics (outstanding :meth:`KVCache.get` views snapshot the old
    buffer after a growth).

    Buffers are zero-initialized (unlike a private cache's
    ``np.empty``): slots shorter than the batch's longest session are
    read by the masked batched attention with probability-0 weights,
    and zero filling guarantees those padding rows are finite, so
    ``0 * pad`` contributes exactly ``0.0`` — the stacked and
    gather-with-zero-padding attention paths stay bit-identical.
    """

    def __init__(self, config: ModelConfig, n_slots: int) -> None:
        if n_slots <= 0:
            raise ConfigError("a stacked block needs at least one slot")
        self.config = config
        self._n_slots = n_slots
        self._n_layers = config.n_layers
        self._row_shape = (config.n_kv_heads, config.head_dim)
        self._k = np.zeros(
            (n_slots, self._n_layers, 0, *self._row_shape), dtype=np.float32
        )
        self._v = np.zeros_like(self._k)
        self._caches: list[KVCache | None] = [None] * n_slots

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def adopt(
        cls, caches: "list[KVCache]", reserve_tokens: int = 0
    ) -> "StackedKVCacheBlock":
        """Stack ``caches`` into a fresh block (slot ``b`` = ``caches[b]``).

        Each cache's live content is copied into its slot once (the
        numpy stand-in for remapping KV pages into a contiguous batch
        region) and the cache is repointed to block-backed views.  A
        cache already adopted by another block is migrated — the old
        block's slot is released.  ``reserve_tokens`` presizes the
        shared capacity (callers that know the decode budget avoid all
        doubling growth during the batch's lifetime).
        """
        caches = list(caches)
        if not caches:
            raise ConfigError("need at least one cache to stack")
        if len({id(c) for c in caches}) != len(caches):
            raise ConfigError("the same cache cannot occupy two slots")
        config = caches[0].config
        for cache in caches:
            if cache.config != config:
                raise ConfigError("stacked caches must share one model config")
        block = cls(config, len(caches))
        need = max(
            [reserve_tokens] + [max(c._lens, default=0) for c in caches]
        )
        block._grow_to(grown_capacity(0, need) if need else 0)
        for slot, cache in enumerate(caches):
            live = max(cache._lens, default=0)
            if live:
                block._k[slot, :, :live] = cache._k[:, :live]
                block._v[slot, :, :live] = cache._v[:, :live]
            if cache._block is not None:
                cache._block.release_slot(cache._block_slot)
            cache._block = block
            cache._block_slot = slot
            cache._k = block._k[slot]
            cache._v = block._v[slot]
            block._caches[slot] = cache
        return block

    @staticmethod
    def of(caches: "list[KVCache]") -> "StackedKVCacheBlock | None":
        """The block stacking exactly ``caches`` in slot order, or ``None``.

        This is the batched decode path's fast-path test: when it
        returns a block, ``stacked_kv`` views cover the batch zero-copy;
        otherwise callers fall back to gathering per-session views.
        """
        if not caches:
            return None
        block = caches[0]._block
        if block is None or block.n_slots != len(caches):
            return None
        for slot, cache in enumerate(caches):
            if cache._block is not block or cache._block_slot != slot:
                return None
        return block

    @classmethod
    def ensure_stacked(
        cls, caches: "list[KVCache]", reserve_tokens: int = 0
    ) -> "StackedKVCacheBlock":
        """Reuse the block already stacking ``caches``, or adopt a new one.

        The engine calls this at the start of every batched decode
        phase: a stable batch pays the adoption copy once, and only a
        membership or order change re-stacks.
        """
        block = cls.of(caches)
        if block is None:
            return cls.adopt(caches, reserve_tokens)
        block.reserve(reserve_tokens)
        return block

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------

    @property
    def n_slots(self) -> int:
        return self._n_slots

    @property
    def capacity(self) -> int:
        """Allocated token capacity shared by every slot and layer."""
        return self._k.shape[2]

    def _grow_to(self, new_cap: int) -> None:
        new_k = np.zeros(
            (self._n_slots, self._n_layers, new_cap, *self._row_shape),
            dtype=np.float32,
        )
        new_v = np.zeros_like(new_k)
        for slot, cache in enumerate(self._caches):
            if cache is None:
                continue
            live = max(cache._lens, default=0)
            if live:
                new_k[slot, :, :live] = self._k[slot, :, :live]
                new_v[slot, :, :live] = self._v[slot, :, :live]
        self._k = new_k
        self._v = new_v
        for slot, cache in enumerate(self._caches):
            if cache is not None:
                cache._k = new_k[slot]
                cache._v = new_v[slot]

    def reserve(self, n_tokens: int) -> None:
        """Grow the shared capacity to at least ``n_tokens`` (amortized)."""
        if n_tokens < 0:
            raise ConfigError("cannot reserve a negative capacity")
        if n_tokens <= self.capacity:
            return
        self._grow_to(grown_capacity(self.capacity, n_tokens))

    def release_slot(self, slot: int) -> None:
        """Forget the cache occupying ``slot`` (it detached or migrated)."""
        if not 0 <= slot < self._n_slots:
            raise ConfigError(f"slot {slot} out of range")
        self._caches[slot] = None

    def _full_batch(self) -> "list[KVCache]":
        caches = []
        for slot, cache in enumerate(self._caches):
            if cache is None:
                raise StateError(f"block slot {slot} has no adopted cache")
            caches.append(cache)
        return caches

    # ------------------------------------------------------------------
    # batched access
    # ------------------------------------------------------------------

    def layer_lengths(self, layer: int) -> np.ndarray:
        """Per-slot live token counts of ``layer``, shape ``(n_slots,)``."""
        return np.array(
            [c._lens[layer] for c in self._full_batch()], dtype=np.intp
        )

    def append_token(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Append one K/V row per slot to ``layer`` in a single write.

        ``keys``/``values`` carry row ``b`` for slot ``b``, shape
        ``(n_slots, n_kv_heads, head_dim)``.  Rows land at each slot's
        own current length (sessions may be at different positions), via
        one fancy-indexed write instead of ``n_slots`` per-cache appends
        — the per-step write path of the batched decode loop.
        """
        caches = self._full_batch()
        keys = np.asarray(keys, dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        expected = (self._n_slots, *self._row_shape)
        if keys.shape != expected or values.shape != expected:
            raise ConfigError(
                f"batched rows must be {expected}, got {keys.shape} / {values.shape}"
            )
        if not 0 <= layer < self._n_layers:
            raise ConfigError(f"layer {layer} out of range")
        lens = np.array([c._lens[layer] for c in caches], dtype=np.intp)
        self.reserve(int(lens.max()) + 1)
        slots = np.arange(self._n_slots)
        self._k[slots, layer, lens] = keys
        self._v[slots, layer, lens] = values
        for cache, n in zip(caches, lens):
            cache._set_len(layer, int(n) + 1)

    def stacked_kv(self, layer: int, n_tokens: int) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(n_slots, n_tokens, heads, head_dim)`` K/V views.

        ``n_tokens`` is normally the batch's longest session; slots
        shorter than that expose zero-filled (or stale-but-finite)
        padding rows that the masked batched attention ignores.
        """
        if not 0 <= layer < self._n_layers:
            raise ConfigError(f"layer {layer} out of range")
        if not 0 <= n_tokens <= self.capacity:
            raise ConfigError(
                f"{n_tokens} tokens outside the block's capacity {self.capacity}"
            )
        return self._k[:, layer, :n_tokens], self._v[:, layer, :n_tokens]
