"""Per-layer KV cache with exact content semantics and O(1) appends.

The cache stores keys and values per layer as ``(n_tokens, n_kv_heads,
head_dim)`` arrays.  It supports the three ways state enters it in this
reproduction: normal prefill/decode appends, bulk installation from a
restoration (HCache projection, KV offload fetch, or prefix recompute),
and truncation for eviction experiments.

Storage layout: all layers share two 4-D backing buffers of shape
``(n_layers, capacity, n_kv_heads, head_dim)`` that grow by amortized
doubling, so ``append`` is an O(block) slice write instead of an
O(history) ``np.concatenate`` — the difference between O(n) and O(n^2)
decode over a whole conversation.  ``get`` returns zero-copy views of the
live prefix; restoration paths can write straight into the backing
buffers (:meth:`KVCache.install_view`) or donate whole pre-projected
tensors (:meth:`KVCache.install_all`) without any defensive copy.

View semantics: views returned by :meth:`get` alias the backing buffer.
An in-capacity ``append`` only writes past the live prefix, so earlier
views keep their content; an ``append`` that triggers a capacity-growth
reallocation detaches them to a stale snapshot of the old buffer, and
``install``/``truncate`` repoint the live region in place.  Callers that
need a durable, current snapshot across any of those operations must
copy, exactly as a real serving system snapshots KV pages before reuse.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, StateError
from repro.models.config import ModelConfig
from repro.models.growth import grown_capacity


class KVCache:
    """Key/value tensors for every layer of one sequence."""

    def __init__(self, config: ModelConfig) -> None:
        self.config = config
        self._n_layers = config.n_layers
        self._row_shape = (config.n_kv_heads, config.head_dim)
        self._k = np.empty((self._n_layers, 0, *self._row_shape), dtype=np.float32)
        self._v = np.empty_like(self._k)
        self._lens = [0] * self._n_layers
        #: length -> number of layers currently at that length.  Keeping the
        #: histogram as an invariant makes ``__len__`` (called on every
        #: forward pass) O(1) while still detecting layer disagreement.
        self._len_counts: dict[int, int] = {0: self._n_layers}

    # ------------------------------------------------------------------
    # lengths
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Token count of the sequence (equal across layers)."""
        if len(self._len_counts) != 1:
            raise StateError(
                f"layers disagree on cached length: {sorted(self._len_counts)}"
            )
        return next(iter(self._len_counts))

    def layer_len(self, layer: int) -> int:
        return self._lens[layer]

    @property
    def capacity(self) -> int:
        """Allocated token capacity shared by every layer."""
        return self._k.shape[1]

    def _set_len(self, layer: int, new_len: int) -> None:
        old = self._lens[layer]
        if new_len == old:
            return
        self._lens[layer] = new_len
        counts = self._len_counts
        remaining = counts[old] - 1
        if remaining:
            counts[old] = remaining
        else:
            del counts[old]
        counts[new_len] = counts.get(new_len, 0) + 1

    def debug_validate(self) -> None:
        """Expensive invariant check (tests / debugging only).

        Recomputes the length histogram from scratch and verifies it
        matches the incrementally maintained one.
        """
        recount: dict[int, int] = {}
        for n in self._lens:
            recount[n] = recount.get(n, 0) + 1
        if recount != self._len_counts:
            raise StateError(
                f"length histogram {self._len_counts} out of sync with {recount}"
            )
        if any(n < 0 or n > self.capacity for n in self._lens):
            raise StateError(f"layer length out of range: {self._lens}")

    # ------------------------------------------------------------------
    # capacity management
    # ------------------------------------------------------------------

    def _ensure_capacity(self, min_capacity: int) -> None:
        cap = self.capacity
        if cap >= min_capacity:
            return
        new_cap = grown_capacity(cap, min_capacity)
        new_k = np.empty((self._n_layers, new_cap, *self._row_shape), dtype=np.float32)
        new_v = np.empty_like(new_k)
        live = max(self._lens, default=0)
        if live:
            new_k[:, :live] = self._k[:, :live]
            new_v[:, :live] = self._v[:, :live]
        self._k = new_k
        self._v = new_v

    def reserve(self, n_tokens: int) -> None:
        """Preallocate capacity for ``n_tokens`` across every layer.

        Callers that know the final context length (restoration, a chat
        round with a fixed output budget) use this to skip the doubling
        reallocations entirely.
        """
        if n_tokens < 0:
            raise ConfigError("cannot reserve a negative capacity")
        self._ensure_capacity(n_tokens)

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------

    def _check_layer(self, layer: int) -> None:
        if not 0 <= layer < self._n_layers:
            raise ConfigError(f"layer {layer} out of range")

    def _check_shape(self, tensor: np.ndarray, name: str) -> np.ndarray:
        tensor = np.asarray(tensor, dtype=np.float32)
        if tensor.ndim != 3 or tensor.shape[1:] != self._row_shape:
            raise ConfigError(
                f"{name} must be (n, {self.config.n_kv_heads}, {self.config.head_dim}), "
                f"got {tensor.shape}"
            )
        return tensor

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def append(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Append newly computed K/V rows for one layer (O(block))."""
        self._check_layer(layer)
        keys = self._check_shape(keys, "keys")
        values = self._check_shape(values, "values")
        if keys.shape[0] != values.shape[0]:
            raise ConfigError("keys and values must cover the same tokens")
        n = self._lens[layer]
        m = keys.shape[0]
        self._ensure_capacity(n + m)
        self._k[layer, n : n + m] = keys
        self._v[layer, n : n + m] = values
        self._set_len(layer, n + m)

    def install(self, layer: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Replace one layer's content wholesale (restoration path).

        Writes into the preallocated backing buffer — no fresh defensive
        copy is allocated per layer.
        """
        self._check_layer(layer)
        keys = self._check_shape(keys, "keys")
        values = self._check_shape(values, "values")
        if keys.shape[0] != values.shape[0]:
            raise ConfigError("keys and values must cover the same tokens")
        n = keys.shape[0]
        self._ensure_capacity(n)
        self._k[layer, :n] = keys
        self._v[layer, :n] = values
        self._set_len(layer, n)

    def install_view(self, layer: int, n_tokens: int) -> tuple[np.ndarray, np.ndarray]:
        """Size one layer to ``n_tokens`` and return writable K/V views.

        The restoration hot path uses this to project straight into cache
        storage; the previous content of the layer is undefined until the
        caller fills the views.
        """
        self._check_layer(layer)
        if n_tokens < 0:
            raise ConfigError("cannot install a negative token count")
        self._ensure_capacity(n_tokens)
        self._set_len(layer, n_tokens)
        return self._k[layer, :n_tokens], self._v[layer, :n_tokens]

    def install_all(self, keys_all: np.ndarray, values_all: np.ndarray) -> None:
        """Adopt pre-projected K/V for every layer at once, zero-copy.

        ``keys_all``/``values_all`` have shape ``(n_layers, n, n_kv_heads,
        head_dim)``.  Fresh C-contiguous float32 arrays (what the batched
        restoration GEMM produces) become the backing buffers directly;
        anything else is copied once.  The caller must not mutate donated
        arrays afterwards.
        """
        keys_all = np.asarray(keys_all, dtype=np.float32)
        values_all = np.asarray(values_all, dtype=np.float32)
        expected_tail = (self._n_layers, *self._row_shape)
        for name, arr in (("keys", keys_all), ("values", values_all)):
            if arr.ndim != 4 or (arr.shape[0], *arr.shape[2:]) != expected_tail:
                raise ConfigError(
                    f"{name} must be ({self._n_layers}, n, {self._row_shape[0]}, "
                    f"{self._row_shape[1]}), got {arr.shape}"
                )
        if keys_all.shape[1] != values_all.shape[1]:
            raise ConfigError("keys and values must cover the same tokens")
        n = keys_all.shape[1]
        self._k = self._adoptable(keys_all)
        self._v = self._adoptable(values_all)
        self._lens = [n] * self._n_layers
        self._len_counts = {n: self._n_layers}

    @staticmethod
    def _adoptable(arr: np.ndarray) -> np.ndarray:
        if arr.flags["C_CONTIGUOUS"] and arr.flags["OWNDATA"]:
            return arr
        return np.ascontiguousarray(arr)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def get(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(keys, values)`` zero-copy views for one layer."""
        self._check_layer(layer)
        n = self._lens[layer]
        return self._k[layer, :n], self._v[layer, :n]

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------

    def truncate(self, n_tokens: int) -> None:
        """Drop cached state beyond ``n_tokens`` on every layer.

        Capacity is retained; only the live lengths shrink (O(layers)).
        """
        if n_tokens < 0:
            raise ConfigError("cannot truncate to a negative length")
        for layer in range(self._n_layers):
            if self._lens[layer] > n_tokens:
                self._set_len(layer, n_tokens)

    def clear(self) -> None:
        """Evict everything (state moves to host storage in HCache)."""
        self.truncate(0)

    # ------------------------------------------------------------------
    # packed (on-storage) format
    # ------------------------------------------------------------------

    def packed_rows(self, layer: int, start: int, stop: int) -> np.ndarray:
        """K and V of rows ``[start, stop)`` concatenated per token.

        Shape ``(stop - start, 2 * kv_size)`` — K elements then V
        elements, flattened per token.  Packing only the requested rows
        keeps incremental saving O(block) instead of O(history).
        """
        keys, values = self.get(layer)
        if not 0 <= start <= stop <= keys.shape[0]:
            raise ConfigError(
                f"rows [{start}, {stop}) out of range for {keys.shape[0]} cached tokens"
            )
        n = stop - start
        kv_size = self.config.kv_size
        out = np.empty((n, 2 * kv_size), dtype=np.float32)
        out[:, :kv_size] = keys[start:stop].reshape(n, kv_size)
        out[:, kv_size:] = values[start:stop].reshape(n, kv_size)
        return out

    def packed_layer(self, layer: int) -> np.ndarray:
        """One layer's K and V concatenated per token: ``(n, 2 * kv_size)``.

        This is the on-storage format for KV-offloaded layers.
        """
        return self.packed_rows(layer, 0, self._lens[layer])

    def _check_packed(self, packed: np.ndarray) -> np.ndarray:
        packed = np.asarray(packed, dtype=np.float32)
        kv_size = self.config.kv_size
        if packed.ndim != 2 or packed.shape[1] != 2 * kv_size:
            raise ConfigError(f"packed KV must be (n, {2 * kv_size}), got {packed.shape}")
        return packed

    def install_packed(self, layer: int, packed: np.ndarray) -> None:
        """Inverse of :meth:`packed_layer`, writing directly into storage."""
        self._check_layer(layer)
        packed = self._check_packed(packed)
        self.install_view(layer, packed.shape[0])
        self.install_packed_rows(layer, 0, packed)

    def install_packed_rows(self, layer: int, start: int, packed: np.ndarray) -> None:
        """Write packed K|V rows into ``[start, start + n)`` of a layer.

        The rows must lie inside the layer's live region (size it first
        with :meth:`install_view`).  This is the chunk-granular inverse of
        :meth:`packed_rows` — the streamed restore installs each arriving
        granule of a KV-offloaded layer through it, so the packed-layout
        knowledge stays in one place.
        """
        self._check_layer(layer)
        packed = self._check_packed(packed)
        n = packed.shape[0]
        if not 0 <= start <= start + n <= self._lens[layer]:
            raise ConfigError(
                f"rows [{start}, {start + n}) outside the layer's "
                f"{self._lens[layer]} live tokens"
            )
        kv_size = self.config.kv_size
        self._k[layer, start : start + n].reshape(n, kv_size)[...] = packed[:, :kv_size]
        self._v[layer, start : start + n].reshape(n, kv_size)[...] = packed[:, kv_size:]

    # ------------------------------------------------------------------
    # accounting / comparison
    # ------------------------------------------------------------------

    def nbytes(self) -> int:
        """Total live cached bytes across layers (at the array dtype width)."""
        row_bytes = self._k.itemsize * self._row_shape[0] * self._row_shape[1]
        return 2 * row_bytes * sum(self._lens)

    def equals(self, other: "KVCache", atol: float = 0.0) -> bool:
        """Exact (default) or tolerant comparison with another cache."""
        if self.config.n_layers != other.config.n_layers:
            return False
        for layer in range(self.config.n_layers):
            k1, v1 = self.get(layer)
            k2, v2 = other.get(layer)
            if k1.shape != k2.shape or v1.shape != v2.shape:
                return False
            if atol == 0.0:
                if not (np.array_equal(k1, k2) and np.array_equal(v1, v2)):
                    return False
            else:
                if not (np.allclose(k1, k2, atol=atol) and np.allclose(v1, v2, atol=atol)):
                    return False
        return True
