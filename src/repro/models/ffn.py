"""Feed-forward network modules.

Two variants cover the evaluated model families: the three-matrix SwiGLU
FFN of Llama2 and the classic two-matrix GELU FFN of OPT.  Together with
attention these are exactly the modules HCache's restoration *skips* — the
source of its >= 6x compute saving (§3.2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.tensor_ops import gelu, silu
from repro.models.weights import LayerWeights


def swiglu_ffn(x: np.ndarray, weights: LayerWeights) -> np.ndarray:
    """Llama2-style FFN: ``down(silu(gate(x)) * up(x))``."""
    if weights.w_gate is None:
        raise ConfigError("SwiGLU FFN requires a gate projection")
    return (silu(x @ weights.w_gate) * (x @ weights.w_up)) @ weights.w_down


def gelu_ffn(x: np.ndarray, weights: LayerWeights) -> np.ndarray:
    """OPT-style FFN: ``fc2(gelu(fc1(x)))``."""
    return gelu(x @ weights.w_up) @ weights.w_down


def ffn_forward(x: np.ndarray, weights: LayerWeights, n_ffn_mats: int) -> np.ndarray:
    """Dispatch to the configured FFN variant."""
    if n_ffn_mats == 3:
        return swiglu_ffn(x, weights)
    if n_ffn_mats == 2:
        return gelu_ffn(x, weights)
    raise ConfigError(f"unsupported FFN matrix count {n_ffn_mats}")
