"""Amortized-growth buffer for captured residual-stream states.

During generation the transformer captures the hidden states entering
every layer — the tensors HCache persists.  Accumulating them with
``np.concatenate`` per decode step re-copies the whole history every
token (O(n^2) over a generation); this buffer instead keeps one
``(n_layers, capacity, hidden)`` array that grows by amortized doubling,
so each step is an O(1) row write and the full per-layer history is
available as zero-copy views at any time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.growth import grown_capacity


class HiddenCapture:
    """Growable per-layer store of residual-stream inputs."""

    def __init__(self, n_layers: int, hidden_size: int, dtype=np.float32) -> None:
        if n_layers <= 0 or hidden_size <= 0:
            raise ConfigError("capture needs positive layer count and hidden size")
        self.n_layers = n_layers
        self.hidden_size = hidden_size
        self._buf = np.empty((n_layers, 0, hidden_size), dtype=dtype)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    @property
    def n_tokens(self) -> int:
        return self._n

    @property
    def capacity(self) -> int:
        return self._buf.shape[1]

    def reserve(self, n_tokens: int) -> None:
        """Preallocate capacity for ``n_tokens`` total."""
        if n_tokens < 0:
            raise ConfigError("cannot reserve a negative capacity")
        self._ensure_capacity(n_tokens)

    def _ensure_capacity(self, min_capacity: int) -> None:
        cap = self.capacity
        if cap >= min_capacity:
            return
        new_cap = grown_capacity(cap, min_capacity)
        new_buf = np.empty(
            (self.n_layers, new_cap, self.hidden_size), dtype=self._buf.dtype
        )
        if self._n:
            new_buf[:, : self._n] = self._buf[:, : self._n]
        self._buf = new_buf

    def extend(self, n_new: int) -> int:
        """Grow the valid region by ``n_new`` tokens; returns the start row.

        The caller then fills ``write(layer, start, rows)`` for every
        layer.  A forward pass reserves its whole block up front so the
        per-layer writes are pure slice assignments.
        """
        if n_new < 0:
            raise ConfigError("cannot extend by a negative token count")
        start = self._n
        self._ensure_capacity(start + n_new)
        self._n = start + n_new
        return start

    def write(self, layer: int, start: int, rows: np.ndarray) -> None:
        """Write one layer's hidden rows for a block starting at ``start``."""
        if not 0 <= layer < self.n_layers:
            raise ConfigError(f"layer {layer} out of range")
        stop = start + rows.shape[0]
        if not 0 <= start <= stop <= self._n:
            raise ConfigError(
                f"rows [{start}, {stop}) outside the valid region of {self._n} tokens"
            )
        self._buf[layer, start:stop] = rows

    def layer_view(self, layer: int) -> np.ndarray:
        """Zero-copy ``(n_tokens, hidden)`` view of one layer's history."""
        if not 0 <= layer < self.n_layers:
            raise ConfigError(f"layer {layer} out of range")
        return self._buf[layer, : self._n]

    def views(self) -> list[np.ndarray]:
        """Per-layer zero-copy views of the full captured history."""
        return [self._buf[layer, : self._n] for layer in range(self.n_layers)]

    def block_views(self, start: int, stop: int) -> list[np.ndarray]:
        """Per-layer zero-copy views of rows ``[start, stop)``."""
        if not 0 <= start <= stop <= self._n:
            raise ConfigError(
                f"rows [{start}, {stop}) outside the valid region of {self._n} tokens"
            )
        return [self._buf[layer, start:stop] for layer in range(self.n_layers)]

    def stacked(self) -> np.ndarray:
        """All layers as one ``(n_layers, n_tokens, hidden)`` view.

        This is the exact input shape of the batched restoration
        projection, available without a single copy.
        """
        return self._buf[:, : self._n]
