"""Numerically stable tensor primitives for the numpy transformer.

All functions are pure and operate on ``float32`` arrays (the reproduction's
stand-in for the serving system's FP16: float32 keeps the lossless-restore
property easy to assert exactly while preserving every structural detail).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def rmsnorm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer normalization (Llama2-style)."""
    if x.shape[-1] != weight.shape[-1]:
        raise ConfigError(f"rmsnorm weight {weight.shape} mismatches input {x.shape}")
    variance = np.mean(np.square(x), axis=-1, keepdims=True)
    return x / np.sqrt(variance + eps) * weight


def layernorm(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None, eps: float = 1e-5
) -> np.ndarray:
    """Classic layer normalization (OPT-style)."""
    if x.shape[-1] != weight.shape[-1]:
        raise ConfigError(f"layernorm weight {weight.shape} mismatches input {x.shape}")
    mean = np.mean(x, axis=-1, keepdims=True)
    variance = np.var(x, axis=-1, keepdims=True)
    out = (x - mean) / np.sqrt(variance + eps) * weight
    if bias is not None:
        out = out + bias
    return out


def silu(x: np.ndarray) -> np.ndarray:
    """Sigmoid-weighted linear unit, the SwiGLU gate activation."""
    return x / (1.0 + np.exp(-x))


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as in GPT/OPT)."""
    c = np.sqrt(2.0 / np.pi).astype(x.dtype) if hasattr(x, "dtype") else np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * np.power(x, 3))))


def causal_mask(n_queries: int, n_keys: int, query_offset: int) -> np.ndarray:
    """Boolean mask: ``mask[i, j]`` is True where query ``i`` may attend.

    Query ``i`` sits at absolute position ``query_offset + i`` and may
    attend to key positions ``0..query_offset + i`` inclusive.
    """
    if n_queries < 0 or n_keys < 0 or query_offset < 0:
        raise ConfigError("mask dimensions must be non-negative")
    q_pos = np.arange(n_queries)[:, None] + query_offset
    k_pos = np.arange(n_keys)[None, :]
    return k_pos <= q_pos
