"""Numerically stable tensor primitives for the numpy transformer.

All functions are pure and operate on ``float32`` arrays (the reproduction's
stand-in for the serving system's FP16: float32 keeps the lossless-restore
property easy to assert exactly while preserving every structural detail).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def rmsnorm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer normalization (Llama2-style)."""
    if x.shape[-1] != weight.shape[-1]:
        raise ConfigError(f"rmsnorm weight {weight.shape} mismatches input {x.shape}")
    variance = np.mean(np.square(x), axis=-1, keepdims=True)
    return x / np.sqrt(variance + eps) * weight


def layernorm(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None, eps: float = 1e-5
) -> np.ndarray:
    """Classic layer normalization (OPT-style)."""
    if x.shape[-1] != weight.shape[-1]:
        raise ConfigError(f"layernorm weight {weight.shape} mismatches input {x.shape}")
    mean = np.mean(x, axis=-1, keepdims=True)
    variance = np.var(x, axis=-1, keepdims=True)
    out = (x - mean) / np.sqrt(variance + eps) * weight
    if bias is not None:
        out = out + bias
    return out


def rmsnorm_into(
    x: np.ndarray,
    weight: np.ndarray,
    out: np.ndarray,
    sq: np.ndarray | None = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """:func:`rmsnorm` fused into a preallocated output buffer.

    Bit-identical to ``rmsnorm(x, weight, eps)`` (same operations in the
    same order) but every ``(n, hidden)``-sized intermediate lands in
    caller-provided storage: ``sq`` holds the squared inputs, ``out`` the
    result.  The restoration pipeline normalizes chunk after chunk through
    the same two buffers, so no per-chunk temporaries are allocated and
    the working set stays cache-resident.
    """
    if x.shape[-1] != weight.shape[-1]:
        raise ConfigError(f"rmsnorm weight {weight.shape} mismatches input {x.shape}")
    if out.shape != x.shape:
        raise ConfigError(f"out shape {out.shape} mismatches input {x.shape}")
    if sq is None:
        sq = np.empty_like(x)
    elif sq.shape != x.shape:
        raise ConfigError(f"scratch shape {sq.shape} mismatches input {x.shape}")
    np.square(x, out=sq)
    variance = np.sum(sq, axis=-1, keepdims=True)
    variance /= x.shape[-1]
    np.sqrt(variance + eps, out=variance)
    np.divide(x, variance, out=out)
    np.multiply(out, weight, out=out)
    return out


def layernorm_into(
    x: np.ndarray,
    weight: np.ndarray,
    out: np.ndarray,
    bias: np.ndarray | None = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """:func:`layernorm` fused into a preallocated output buffer.

    Bit-identical to ``layernorm(x, weight, bias, eps)`` but the three
    ``(n, hidden)``-sized intermediates (centered, scaled, weighted) are
    all written in place into ``out``.
    """
    if x.shape[-1] != weight.shape[-1]:
        raise ConfigError(f"layernorm weight {weight.shape} mismatches input {x.shape}")
    if out.shape != x.shape:
        raise ConfigError(f"out shape {out.shape} mismatches input {x.shape}")
    mean = np.mean(x, axis=-1, keepdims=True)
    variance = np.var(x, axis=-1, keepdims=True)
    np.subtract(x, mean, out=out)
    np.divide(out, np.sqrt(variance + eps), out=out)
    np.multiply(out, weight, out=out)
    if bias is not None:
        np.add(out, bias, out=out)
    return out


def silu(x: np.ndarray) -> np.ndarray:
    """Sigmoid-weighted linear unit, the SwiGLU gate activation."""
    return x / (1.0 + np.exp(-x))


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as in GPT/OPT)."""
    c = np.sqrt(2.0 / np.pi).astype(x.dtype) if hasattr(x, "dtype") else np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * np.power(x, 3))))


def causal_mask(n_queries: int, n_keys: int, query_offset: int) -> np.ndarray:
    """Boolean mask: ``mask[i, j]`` is True where query ``i`` may attend.

    Query ``i`` sits at absolute position ``query_offset + i`` and may
    attend to key positions ``0..query_offset + i`` inclusive.
    """
    if n_queries < 0 or n_keys < 0 or query_offset < 0:
        raise ConfigError("mask dimensions must be non-negative")
    q_pos = np.arange(n_queries)[:, None] + query_offset
    k_pos = np.arange(n_keys)[None, :]
    return k_pos <= q_pos
