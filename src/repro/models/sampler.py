"""Token sampling strategies for the numpy transformer."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.tensor_ops import softmax


def greedy(logits: np.ndarray) -> int:
    """Deterministic argmax sampling — used by every correctness test so
    interrupted and uninterrupted runs can be compared token for token."""
    return int(np.argmax(np.asarray(logits)))


def sample_temperature(
    logits: np.ndarray, temperature: float, rng: np.random.Generator
) -> int:
    """Sample from the temperature-scaled distribution."""
    if temperature <= 0:
        raise ConfigError("temperature must be positive; use greedy() for argmax")
    probs = softmax(np.asarray(logits, dtype=np.float64) / temperature)
    return int(rng.choice(probs.size, p=probs))


def sample_top_k(
    logits: np.ndarray, k: int, temperature: float, rng: np.random.Generator
) -> int:
    """Top-k sampling with temperature."""
    logits = np.asarray(logits, dtype=np.float64)
    if k <= 0:
        raise ConfigError("k must be positive")
    k = min(k, logits.size)
    top = np.argpartition(logits, -k)[-k:]
    probs = softmax(logits[top] / max(temperature, 1e-9))
    return int(top[rng.choice(k, p=probs)])
