"""Round-robin storage array (§4.2.1).

Chunks of one layer are distributed over every device round-robin so a
layer read aggregates all devices' bandwidth, capped by the GPU's link
(PCIe) speed.  The array computes both functional placement (which device
holds chunk *i*) and the timing of a batched layer read, which is what the
restoration pipeline charges to the IO stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simulator.hardware import DRAMSpec, SSDSpec
from repro.storage.device import LatencyEmulator, StorageDevice
from repro.storage.replicated import ReplicatedDevice


@dataclass(frozen=True)
class LayerReadTiming:
    """Timing of reading all of one layer's chunks from the array.

    Attributes:
        n_chunks: Chunks read.
        nbytes: Total bytes moved.
        seconds: Wall-clock time: devices operate in parallel, each serving
            its share of chunks sequentially; the aggregate is additionally
            floored by the link bandwidth.
        bottleneck: ``"device"`` or ``"link"``.
    """

    n_chunks: int
    nbytes: int
    seconds: float
    bottleneck: str


class StorageArray:
    """A set of identical devices with round-robin chunk placement.

    With ``replication=2`` every round-robin slot becomes a
    :class:`~repro.storage.replicated.ReplicatedDevice` — a primary plus a
    same-spec mirror — so chunk writes are mirrored and reads fail over on
    an injected device fault.  Placement, striping, and the read-timing
    model are unchanged: a healthy replicated array performs exactly like
    an unreplicated one, paying only the doubled write traffic.
    """

    def __init__(
        self,
        specs: tuple[SSDSpec | DRAMSpec, ...] | list[SSDSpec | DRAMSpec],
        link_bandwidth: float,
        replication: int = 1,
    ) -> None:
        if not specs:
            raise ConfigError("storage array needs at least one device")
        if link_bandwidth <= 0:
            raise ConfigError("link bandwidth must be positive")
        if replication not in (1, 2):
            raise ConfigError("replication must be 1 (off) or 2 (mirrored)")
        primaries = [StorageDevice(spec, i) for i, spec in enumerate(specs)]
        if replication == 2:
            mirrors = [
                StorageDevice(spec, i + len(specs)) for i, spec in enumerate(specs)
            ]
            self.devices: list[StorageDevice | ReplicatedDevice] = [
                ReplicatedDevice(p, m) for p, m in zip(primaries, mirrors)
            ]
        else:
            self.devices = list(primaries)
        self.replication = replication
        self.link_bandwidth = float(link_bandwidth)
        self._emulator: LatencyEmulator | None = None

    # -- wall-clock latency emulation ----------------------------------

    @property
    def latency_emulator(self) -> LatencyEmulator | None:
        """The shared emulator, or ``None`` when emulation is off."""
        return self._emulator

    def emulate_latency(
        self, min_sleep_s: float = 1e-3, channels: int = 1
    ) -> LatencyEmulator:
        """Make every device sleep its modelled seconds for real.

        All devices share one :class:`LatencyEmulator` — with the default
        ``channels=1`` the timing model charges chunk reads to a single
        serial IO stream, and the shared debt keeps the emulated wall
        clock faithful to that.  ``channels=N`` emulates N independent
        ingest links instead (one per simulated GPU of a sharded
        restore): concurrent readers sleep different channels at the same
        time, so emulated IO wall clock floors at the aggregated-bandwidth
        ``total / N`` the sharded makespan model prices.  Returns the
        emulator so callers can :meth:`LatencyEmulator.flush` at the end
        of a timed region.  Idempotent while already emulating with the
        same channel count.

        Raises:
            ConfigError: when already emulating with a different
                ``channels`` — call :meth:`stop_latency_emulation` first.
        """
        if self._emulator is None:
            self._emulator = LatencyEmulator(min_sleep_s, channels=channels)
            for device in self.devices:
                device.emulator = self._emulator
        elif self._emulator.channels != channels:
            raise ConfigError(
                f"already emulating with {self._emulator.channels} channel(s); "
                "stop_latency_emulation() before changing the channel count"
            )
        return self._emulator

    def stop_latency_emulation(self) -> None:
        """Detach the emulator; operations become instant again."""
        self._emulator = None
        for device in self.devices:
            device.emulator = None

    def __len__(self) -> int:
        return len(self.devices)

    @property
    def degraded_reads(self) -> int:
        """Failover reads served by mirrors across the whole array."""
        return sum(getattr(d, "degraded_reads", 0) for d in self.devices)

    def replica(self, index: int, role: str = "primary") -> StorageDevice:
        """The raw :class:`StorageDevice` behind round-robin slot ``index``.

        ``role`` picks ``"primary"`` or ``"mirror"`` on a replicated
        array; unreplicated arrays only have the primary.  This is the
        hook fault injection scripts use to fail one replica: set
        ``array.replica(i).fault_policy``.
        """
        if index < 0 or index >= len(self.devices):
            raise ConfigError(f"device index {index} out of range")
        if role not in ("primary", "mirror"):
            raise ConfigError(f"unknown replica role {role!r}")
        device = self.devices[index]
        if isinstance(device, ReplicatedDevice):
            return device.primary if role == "primary" else device.mirror
        if role == "mirror":
            raise ConfigError("array is not replicated; it has no mirrors")
        return device

    def device_for(self, chunk_index: int, offset: int = 0) -> "StorageDevice | ReplicatedDevice":
        """Round-robin placement: chunk ``i`` lives on device ``(i + offset) mod n``.

        The ``offset`` (the storage manager passes the layer index) rotates
        each layer's starting device so partial chunk rounds do not pile
        onto device 0 layer after layer — keeping per-device bytes balanced
        to within one chunk per layer run.
        """
        if chunk_index < 0:
            raise ConfigError("chunk index must be non-negative")
        return self.devices[(chunk_index + offset) % len(self.devices)]

    @property
    def used_bytes_per_device(self) -> list[int]:
        return [d.used_bytes for d in self.devices]

    @property
    def total_used_bytes(self) -> int:
        return sum(self.used_bytes_per_device)

    @property
    def aggregate_read_bandwidth(self) -> float:
        """Bandwidth of a large striped read, including the link cap."""
        device_bw = sum(getattr(d.spec, "read_bandwidth", None) or d.spec.bandwidth
                        for d in self.devices)
        return min(device_bw, self.link_bandwidth)

    def _device_read_bw(self, device: "StorageDevice | ReplicatedDevice") -> float:
        spec = device.spec
        return getattr(spec, "read_bandwidth", None) or spec.bandwidth

    def layer_read_timing(
        self, n_chunks: int, chunk_bytes: int, io_parallelism: int = 1
    ) -> LayerReadTiming:
        """Time to fetch ``n_chunks`` chunks of ``chunk_bytes`` each.

        Devices work in parallel.  Because successive layer reads chain on
        the IO stream (Fig. 8d: hidden-state transmission proceeds without
        per-layer synchronization) and placement rotates across layers,
        bandwidth is shared fractionally (``n_chunks / n_devices`` chunks'
        worth of bytes per device) while per-IO latency is charged on the
        integer chunk count a device actually serves.  The result is
        floored by a pure link-bandwidth transfer of the same bytes, so a
        fast array degenerates to the PCIe-bound case (§6.2.2: 4 SSDs
        saturate an A100's upstream PCIe).

        ``io_parallelism`` models the restore executor's IO worker pool
        keeping that many chunk reads in flight per device (NVMe queue
        depth): overlapped IOs hide per-operation latency — charged on
        ``ceil(n_ios / io_parallelism)`` serial rounds — but can never
        exceed device or link bandwidth.
        """
        if n_chunks < 0 or chunk_bytes < 0:
            raise ConfigError("chunk count and size must be non-negative")
        if io_parallelism < 1:
            raise ConfigError("io_parallelism must be at least 1")
        if n_chunks == 0:
            return LayerReadTiming(0, 0, 0.0, "device")
        nbytes = n_chunks * chunk_bytes
        n_dev = len(self.devices)
        device_time = 0.0
        for device in self.devices:
            n_ios = math.ceil(n_chunks / n_dev)
            share_bytes = n_chunks / n_dev * chunk_bytes
            spec = device.spec
            latency_rounds = math.ceil(n_ios / io_parallelism)
            latency = (
                latency_rounds * spec.io_latency if hasattr(spec, "io_latency") else 0.0
            )
            bw = self._device_read_bw(device)
            device_time = max(device_time, latency + share_bytes / bw)
        link_time = nbytes / self.link_bandwidth
        if device_time >= link_time:
            return LayerReadTiming(n_chunks, nbytes, device_time, "device")
        return LayerReadTiming(n_chunks, nbytes, link_time, "link")

    def read_time(self, nbytes: int, chunk_bytes: int, io_parallelism: int = 1) -> float:
        """Convenience: striped read time for ``nbytes`` of chunked data."""
        if chunk_bytes <= 0:
            raise ConfigError("chunk_bytes must be positive")
        n_chunks = math.ceil(nbytes / chunk_bytes)
        return self.layer_read_timing(n_chunks, chunk_bytes, io_parallelism).seconds

    def write_time(self, nbytes: int, chunk_bytes: int) -> float:
        """Striped write time for ``nbytes`` of chunked data."""
        if chunk_bytes <= 0:
            raise ConfigError("chunk_bytes must be positive")
        n_chunks = math.ceil(nbytes / chunk_bytes)
        if n_chunks == 0:
            return 0.0
        n_dev = len(self.devices)
        device_time = 0.0
        for device in self.devices:
            n_ios = math.ceil(n_chunks / n_dev)
            share_bytes = n_chunks / n_dev * chunk_bytes
            spec = device.spec
            write_bw = getattr(spec, "write_bandwidth", None) or spec.bandwidth
            device_time = max(device_time, n_ios * spec.io_latency + share_bytes / write_bw)
        return max(device_time, nbytes / self.link_bandwidth)
