"""The HCache storage manager (§4.2).

Functionally stores hidden states (and, for scheduler-assigned layers, KV
pairs) in 64-token chunks striped round-robin over a storage array, and
reports the timing of layer-granularity reads for the restoration pipeline.

Saving follows the paper's lifecycle: states arrive layer-before-token as
generation proceeds; full chunks are flushed to devices immediately ("once
a chunk is fully populated, it is promptly written to the NVMe device",
§5), while the partially filled tail chunk stays in a host-side buffer
until :meth:`StorageManager.seal_context` or further appends fill it.
Restoration reads token-before-layer: one call fetches a whole layer.

Durability (optional): with a :class:`~repro.storage.journal.
ManifestJournal` attached, every metadata mutation is journaled and
:meth:`StorageManager.recover` rebuilds a manager from journal + device
chunks alone after a crash.  The commit-point ordering is strict — device
write first, journal record second — so a journaled chunk is always
readable and an unjournaled device chunk is an orphan recovery sweeps; a
crash between the two can therefore never double-count tokens.  Sealed
partial tails follow the same discipline: when appends grow a sealed
partial, its stale device copy is *kept* (still journaled, still durable)
until the moment the refilled chunk rewrites that slot, shrinking the
crash window to the single delete+write+journal step that write-once
devices force.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConfigError, RecoveryError, StateError
from repro.storage.allocator import ChunkAllocator
from repro.storage.array import LayerReadTiming, StorageArray
from repro.storage.chunk import CHUNK_TOKENS, ChunkKey, ChunkLayout
from repro.storage.journal import ContextManifest, ManifestJournal, ManifestState, RunManifest
from repro.storage.streaming import GranuleSpec, LayerChunk, StagingRing


def _payload_crc(payload: np.ndarray) -> int:
    """CRC32 of a chunk payload's bytes (row-major, any input layout)."""
    return zlib.crc32(np.ascontiguousarray(payload).tobytes())


class _TailBuffer:
    """Preallocated staging buffer for one run's partially filled chunk.

    Exactly one chunk worth of rows, written by slice assignment — the
    hot saving path never builds Python lists of per-row copies nor calls
    ``np.stack`` to flush.
    """

    __slots__ = ("data", "n")

    def __init__(self, tokens_per_chunk: int, width: int, dtype: np.dtype) -> None:
        self.data = np.empty((tokens_per_chunk, width), dtype=dtype)
        self.n = 0


@dataclass(frozen=True)
class ContextMeta:
    """Shape information for one stored context.

    Attributes:
        context_id: Stable identity (conversation / document id).
        n_layers: Transformer layer count of the serving model.
        hidden_width: Per-token hidden-state element count.
        kv_width: Per-token KV element count (2x hidden for MHA).
        dtype: Element dtype of stored state.
    """

    context_id: str
    n_layers: int
    hidden_width: int
    kv_width: int
    dtype: np.dtype


class StorageManager:
    """Chunked host storage for contextual LLM states."""

    def __init__(
        self,
        array: StorageArray,
        capacity_bytes: int | None = None,
        tokens_per_chunk: int = CHUNK_TOKENS,
        journal: ManifestJournal | None = None,
        journal_compact_bytes: int = 1 << 20,
    ) -> None:
        if tokens_per_chunk <= 0:
            raise ConfigError("tokens_per_chunk must be positive")
        if journal_compact_bytes <= 0:
            raise ConfigError("journal_compact_bytes must be positive")
        total_capacity = capacity_bytes
        if total_capacity is None:
            total_capacity = sum(d.capacity_bytes for d in array.devices)
        self.array = array
        self.tokens_per_chunk = tokens_per_chunk
        self.allocator = ChunkAllocator(total_capacity)
        #: Optional write-ahead manifest journal; ``None`` leaves the hot
        #: path exactly as before (no journaling, no crash safety).
        self.journal = journal
        #: Log size that triggers a compacted snapshot (checked at seals).
        self.journal_compact_bytes = int(journal_compact_bytes)
        self._meta: dict[str, ContextMeta] = {}
        #: Host-side partially filled tail chunks: run key -> staging buffer.
        self._tails: dict[tuple[str, int, str], _TailBuffer] = {}
        #: Runs whose tail is also persisted on a device as a partial chunk
        #: (written by seal_context; rewritten when the chunk later fills).
        self._sealed_partial: set[tuple[str, int, str]] = set()
        #: Sealed partials whose run has since grown: run key -> (chunk
        #: index, sealed row count).  The stale device copy stays durable
        #: until the refilled chunk rewrites its slot.
        self._stale_partial: dict[tuple[str, int, str], tuple[int, int]] = {}
        #: Durable token log per context (mirrors the journal's records).
        self._token_logs: dict[str, list[int]] = {}
        #: CRC32 of journaled full chunks (compaction snapshot input).
        self._chunk_crcs: dict[ChunkKey, int] = {}

    # ------------------------------------------------------------------
    # context lifecycle
    # ------------------------------------------------------------------

    def register_context(
        self,
        context_id: str,
        n_layers: int,
        hidden_width: int,
        dtype: np.dtype | type = np.float32,
    ) -> ContextMeta:
        """Declare a context before saving any of its state."""
        if context_id in self._meta:
            raise StateError(f"context {context_id!r} already registered")
        if n_layers <= 0 or hidden_width <= 0:
            raise ConfigError("context needs positive layer count and hidden width")
        meta = ContextMeta(
            context_id=context_id,
            n_layers=n_layers,
            hidden_width=hidden_width,
            kv_width=2 * hidden_width,
            dtype=np.dtype(dtype),
        )
        self._meta[context_id] = meta
        self._token_logs[context_id] = []
        if self.journal is not None:
            self.journal.append(
                {
                    "op": "register",
                    "context_id": context_id,
                    "n_layers": n_layers,
                    "hidden_width": hidden_width,
                    "dtype": str(meta.dtype),
                }
            )
        return meta

    def has_context(self, context_id: str) -> bool:
        return context_id in self._meta

    def meta(self, context_id: str) -> ContextMeta:
        if context_id not in self._meta:
            raise StateError(f"context {context_id!r} not registered")
        return self._meta[context_id]

    def free_context(self, context_id: str) -> int:
        """Drop a context's state everywhere, returning bytes freed.

        A registered context may own no runs at all — a pure-recompute
        partition never stores state, and sessions can close before their
        first save — so freeing is a no-op for the allocator in that case.
        """
        meta = self.meta(context_id)
        # Journal the free *before* any deletion: replaying a prefix that
        # stops short of this record still describes readable chunks,
        # while a prefix that includes it never resurrects a half-deleted
        # context.  Device keys already gone at replay are no
        # contradiction — recovery sweeps, it does not require, freed
        # chunks.
        if self.journal is not None:
            self.journal.append({"op": "free", "context_id": context_id})
        freed = 0
        if self.allocator.has_context_runs(context_id):
            freed = self.allocator.free_context(context_id)
        for key in [k for k in self._tails if k[0] == context_id]:
            del self._tails[key]
            self._sealed_partial.discard(key)
            self._stale_partial.pop(key, None)
        for device in self.array.devices:
            for key in device.keys():
                if isinstance(key, ChunkKey) and key.context_id == context_id:
                    device.delete(key)
        for key in [k for k in self._chunk_crcs if k.context_id == context_id]:
            del self._chunk_crcs[key]
        self._token_logs.pop(context_id, None)
        del self._meta[meta.context_id]
        return freed

    def context_ids(self) -> tuple[str, ...]:
        return tuple(self._meta)

    def journal_tokens(self, context_id: str, ids: Sequence[int]) -> None:
        """Append token ids to the context's durable token log.

        The engine calls this *before* appending the block's state rows,
        so the journaled log always covers (is at least as long as) the
        durably readable rows.  Recovery then truncates the log down to
        the durable row count — it never has to invent token ids, and a
        crash between this record and the rows' device writes costs
        nothing but a few spurious log entries.
        """
        self.meta(context_id)
        ids = [int(t) for t in ids]
        if not ids:
            return
        self._token_logs.setdefault(context_id, []).extend(ids)
        if self.journal is not None:
            self.journal.append({"op": "tokens", "context_id": context_id, "ids": ids})

    def token_log(self, context_id: str) -> tuple[int, ...]:
        """The context's logged token ids, oldest first."""
        self.meta(context_id)
        return tuple(self._token_logs.get(context_id, ()))

    # ------------------------------------------------------------------
    # saving (layer-before-token)
    # ------------------------------------------------------------------

    def _layout(self, meta: ContextMeta, kind: str) -> ChunkLayout:
        width = meta.hidden_width if kind == "hidden" else meta.kv_width
        return ChunkLayout(
            tokens_per_chunk=self.tokens_per_chunk,
            bytes_per_token=width * meta.dtype.itemsize,
        )

    def _width(self, meta: ContextMeta, kind: str) -> int:
        return meta.hidden_width if kind == "hidden" else meta.kv_width

    def append(self, context_id: str, layer: int, states: np.ndarray, kind: str = "hidden") -> None:
        """Append per-token state rows for one layer of a context.

        ``states`` has shape ``(n_new_tokens, width)`` where width is the
        hidden size for ``kind="hidden"`` and twice that for ``kind="kv"``
        (K and V concatenated).  Full chunks are flushed to their
        round-robin device; the tail remains host-buffered.
        """
        meta = self.meta(context_id)
        if layer < 0 or layer >= meta.n_layers:
            raise ConfigError(f"layer {layer} out of range for {context_id!r}")
        states = np.asarray(states, dtype=meta.dtype)
        if states.ndim != 2 or states.shape[1] != self._width(meta, kind):
            raise ConfigError(
                f"states must be (n, {self._width(meta, kind)}), got {states.shape}"
            )
        run_key = (context_id, layer, kind)
        if not self.allocator.has_run(context_id, layer, kind):
            self.allocator.open_run(context_id, layer, kind, self._layout(meta, kind))
            self._tails[run_key] = _TailBuffer(
                self.tokens_per_chunk, self._width(meta, kind), meta.dtype
            )
        tail = self._tails[run_key]
        run = self.allocator.run(context_id, layer, kind)
        flushed_tokens = run.n_tokens - tail.n
        if run_key in self._sealed_partial:
            # The tail chunk was persisted at the last seal; it grows now.
            # Its stale device copy is NOT deleted here: the sealed rows
            # stay durable (and journaled) until the refilled chunk — or a
            # re-seal — rewrites the same slot, at which point flush/seal
            # retire it immediately before the replacement write.  A crash
            # anywhere in between loses only the new, never-sealed rows.
            self._stale_partial[run_key] = (
                flushed_tokens // self.tokens_per_chunk,
                tail.n,
            )
            self._sealed_partial.discard(run_key)
        self.allocator.extend(context_id, layer, kind, states.shape[0])
        # Stream the block through: aligned full chunks flush as slice
        # views of the input (the device snapshots them); the remainder
        # lands in the preallocated tail by slice assignment.
        cpc = self.tokens_per_chunk

        def flush_chunk(payload: np.ndarray) -> None:
            nonlocal flushed_tokens
            chunk_index = flushed_tokens // cpc
            key = ChunkKey(context_id, layer, chunk_index, kind)
            device = self.array.device_for(chunk_index, offset=layer)
            stale = self._stale_partial.get(run_key)
            if stale is not None and stale[0] == chunk_index:
                # Retire the sealed partial's stale copy only now, just
                # before its full replacement lands in the same slot.
                device.delete(key)
                del self._stale_partial[run_key]
            device.write(key, payload)
            # Commit point: journal AFTER the device write.  A journaled
            # chunk is always readable; an unjournaled device chunk is an
            # orphan recovery sweeps — never a double-counted token.
            if self.journal is not None:
                crc = _payload_crc(payload)
                self._chunk_crcs[key] = crc
                self.journal.append(
                    {
                        "op": "chunk",
                        "context_id": context_id,
                        "layer": layer,
                        "kind": kind,
                        "index": chunk_index,
                        "crc": crc,
                    }
                )
            flushed_tokens += cpc

        pos = 0
        n_new = states.shape[0]
        while pos < n_new:
            if tail.n == 0 and n_new - pos >= cpc:
                flush_chunk(states[pos : pos + cpc])
                pos += cpc
                continue
            take = min(cpc - tail.n, n_new - pos)
            tail.data[tail.n : tail.n + take] = states[pos : pos + take]
            tail.n += take
            pos += take
            if tail.n == cpc:
                flush_chunk(tail.data)
                tail.n = 0

    def seal_context(self, context_id: str) -> None:
        """Flush every partially filled tail chunk to its device.

        Called when a conversation round ends and the context's GPU state
        is evicted — afterwards all state also lives on the storage
        devices.  The host buffer keeps the tail rows so a later round can
        grow the partial chunk (it is then rewritten, write-once devices
        cannot append in place).

        With a journal attached, sealing is also the durability boundary
        for partial tails: one ``seal`` record commits every tail written
        here (chunk index, row count, payload CRC), and the journal is
        compacted when its log has outgrown
        :attr:`journal_compact_bytes`.  Unsealed tail rows are the loss
        window a crash pays — bounded by one chunk per (layer, kind) run.
        """
        self.meta(context_id)
        sealed: list[dict] = []
        for run_key in list(self._tails):
            ctx, layer, kind = run_key
            if ctx != context_id:
                continue
            tail = self._tails[run_key]
            if tail.n == 0 or run_key in self._sealed_partial:
                continue
            run = self.allocator.run(ctx, layer, kind)
            flushed_tokens = run.n_tokens - tail.n
            if flushed_tokens % self.tokens_per_chunk != 0:
                raise StateError("tail must start at a chunk boundary")
            chunk_index = flushed_tokens // self.tokens_per_chunk
            key = ChunkKey(ctx, layer, chunk_index, kind)
            device = self.array.device_for(chunk_index, offset=layer)
            stale = self._stale_partial.get(run_key)
            if stale is not None and stale[0] == chunk_index:
                # A previous seal's copy occupies the slot this grown tail
                # rewrites; retire it only now, immediately before its
                # replacement, to keep the durability gap minimal.
                device.delete(key)
                del self._stale_partial[run_key]
            device.write(key, tail.data[: tail.n])
            self._sealed_partial.add(run_key)
            if self.journal is not None:
                sealed.append(
                    {
                        "layer": layer,
                        "kind": kind,
                        "index": chunk_index,
                        "tokens": tail.n,
                        "crc": _payload_crc(tail.data[: tail.n]),
                    }
                )
        if self.journal is not None:
            if sealed:
                self.journal.append(
                    {"op": "seal", "context_id": context_id, "tails": sealed}
                )
            if self.journal.journal_bytes >= self.journal_compact_bytes:
                self.compact_journal()

    # ------------------------------------------------------------------
    # durability: snapshot, compaction, recovery
    # ------------------------------------------------------------------

    def manifest_state(self) -> ManifestState:
        """Snapshot the durable metadata as a replayable manifest.

        Exactly what replaying the journal from genesis would yield:
        journaled full chunks, sealed tails (including a *stale* sealed
        partial whose run has grown but whose slot has not been rewritten
        yet — its device copy is still the durable source of those rows),
        and the token logs.  Unsealed host-tail rows are deliberately
        absent: they are not durable.
        """
        state = ManifestState()
        cpc = self.tokens_per_chunk
        for context_id, meta in self._meta.items():
            crec = ContextManifest(
                n_layers=meta.n_layers,
                hidden_width=meta.hidden_width,
                dtype=str(meta.dtype),
                tokens=list(self._token_logs.get(context_id, [])),
            )
            state.contexts[context_id] = crec
            for layer in range(meta.n_layers):
                for kind in ("hidden", "kv"):
                    if not self.allocator.has_run(context_id, layer, kind):
                        continue
                    run_key = (context_id, layer, kind)
                    run = self.allocator.run(context_id, layer, kind)
                    tail = self._tails[run_key]
                    full = (run.n_tokens - tail.n) // cpc
                    rrec = RunManifest(full_chunks=full)
                    for index in range(full):
                        crc = self._chunk_crcs.get(ChunkKey(context_id, layer, index, kind))
                        if crc is not None:
                            rrec.chunk_crcs[index] = crc
                    if run_key in self._sealed_partial:
                        rrec.sealed_tail_index = full
                        rrec.sealed_tail_tokens = tail.n
                        rrec.sealed_tail_crc = _payload_crc(tail.data[: tail.n])
                    elif run_key in self._stale_partial:
                        index, sealed_rows = self._stale_partial[run_key]
                        rrec.sealed_tail_index = index
                        rrec.sealed_tail_tokens = sealed_rows
                        rrec.sealed_tail_crc = _payload_crc(tail.data[:sealed_rows])
                    crec.runs[(layer, kind)] = rrec
        return state

    def compact_journal(self) -> None:
        """Write a compacted snapshot and reset the journal log."""
        if self.journal is None:
            raise StateError("storage manager has no journal attached")
        self.journal.compact(self.manifest_state())

    @classmethod
    def recover(
        cls,
        array: StorageArray,
        journal: ManifestJournal,
        capacity_bytes: int | None = None,
        tokens_per_chunk: int = CHUNK_TOKENS,
        journal_compact_bytes: int = 1 << 20,
        verify_chunks: bool = True,
    ) -> "StorageManager":
        """Rebuild a manager from journal + device chunks alone.

        The crash-recovery (and migrate-to-another-engine) entry point:
        nothing of the dead manager's memory survives.  The journal
        replays into a :class:`ManifestState`; each context's durable
        token count is the *minimum over its runs* of ``full_chunks x
        tokens_per_chunk + sealed tail`` — a run's sealed tail counting
        only if its device copy exists and matches the journaled CRC (a
        retired-but-never-rewritten partial rolls that run back to its
        chunk boundary).  Runs longer than the common durable count are
        truncated: a boundary chunk's surviving prefix is salvaged into
        the host tail buffer, excess device chunks are dropped, and the
        token log is cut to exactly the durable rows.  Journal/device
        contradictions (a journaled chunk missing, a CRC mismatch, a
        token log shorter than the durable rows) raise
        :class:`~repro.errors.RecoveryError` — recovery is conservative
        or loud, never silently wrong.  Unjournaled device chunks
        (orphans of a crash between write and journal append) are swept.

        ``verify_chunks`` re-reads every full chunk to check its CRC;
        disable it to trade integrity checking for recovery speed.  The
        returned manager has ``journal`` attached and starts from a fresh
        compacted snapshot describing exactly the recovered state.
        """
        state = journal.replay()
        manager = cls(
            array,
            capacity_bytes,
            tokens_per_chunk,
            journal=None,
            journal_compact_bytes=journal_compact_bytes,
        )
        cpc = tokens_per_chunk
        live: set[ChunkKey] = set()
        for context_id, crec in state.contexts.items():
            try:
                dtype = np.dtype(crec.dtype)
            except TypeError as exc:
                raise RecoveryError(
                    f"context {context_id!r} has unknown dtype {crec.dtype!r}"
                ) from exc
            meta = ContextMeta(
                context_id=context_id,
                n_layers=crec.n_layers,
                hidden_width=crec.hidden_width,
                kv_width=2 * crec.hidden_width,
                dtype=dtype,
            )
            manager._meta[context_id] = meta
            if not crec.runs:
                manager._token_logs[context_id] = list(crec.tokens)
                continue
            # Pass 1: per-run durable candidates, checking the devices.
            candidates: dict[tuple[int, str], tuple[int, np.ndarray | None]] = {}
            for (layer, kind), rrec in crec.runs.items():
                if layer < 0 or layer >= crec.n_layers:
                    raise RecoveryError(
                        f"context {context_id!r} journals layer {layer} beyond "
                        f"its {crec.n_layers} layers"
                    )
                for index in range(rrec.full_chunks):
                    key = ChunkKey(context_id, layer, index, kind)
                    device = array.device_for(index, offset=layer)
                    if key not in device:
                        raise RecoveryError(
                            f"journaled chunk {key} is missing from its device"
                        )
                    if verify_chunks and index in rrec.chunk_crcs:
                        payload, _ = device.read(key)
                        if _payload_crc(payload) != rrec.chunk_crcs[index]:
                            raise RecoveryError(
                                f"chunk {key} payload fails its journaled checksum"
                            )
                durable = rrec.full_chunks * cpc
                tail_rows: np.ndarray | None = None
                if rrec.sealed_tail_tokens > 0:
                    if rrec.sealed_tail_index != rrec.full_chunks:
                        raise RecoveryError(
                            f"run ({context_id!r}, L{layer}, {kind}): sealed tail "
                            f"at chunk {rrec.sealed_tail_index} but "
                            f"{rrec.full_chunks} full chunks are journaled"
                        )
                    key = ChunkKey(context_id, layer, rrec.full_chunks, kind)
                    device = array.device_for(rrec.full_chunks, offset=layer)
                    if key in device:
                        payload, _ = device.read(key)
                        if (
                            payload.shape[0] != rrec.sealed_tail_tokens
                            or _payload_crc(payload) != rrec.sealed_tail_crc
                        ):
                            raise RecoveryError(
                                f"sealed tail {key} mismatches its journal record"
                            )
                        durable += rrec.sealed_tail_tokens
                        tail_rows = payload
                    # else: the partial was retired for a rewrite that never
                    # completed — those rows are gone; the run rolls back to
                    # its chunk boundary (the documented rewrite window).
                candidates[(layer, kind)] = (durable, tail_rows)
            durable_tokens = min(d for d, _ in candidates.values())
            if len(crec.tokens) < durable_tokens:
                raise RecoveryError(
                    f"context {context_id!r}: token log holds {len(crec.tokens)} "
                    f"ids but {durable_tokens} rows are durable"
                )
            manager._token_logs[context_id] = list(crec.tokens[:durable_tokens])
            # Pass 2: rebuild every run, truncated to the common count.
            for (layer, kind), (_, tail_rows) in candidates.items():
                rrec = crec.runs[(layer, kind)]
                run_key = (context_id, layer, kind)
                manager.allocator.open_run(
                    context_id, layer, kind, manager._layout(meta, kind)
                )
                manager.allocator.extend(context_id, layer, kind, durable_tokens)
                tailbuf = _TailBuffer(cpc, manager._width(meta, kind), meta.dtype)
                manager._tails[run_key] = tailbuf
                full_keep = durable_tokens // cpc
                rem = durable_tokens - full_keep * cpc
                boundary_key = ChunkKey(context_id, layer, full_keep, kind)
                if rem:
                    device = array.device_for(full_keep, offset=layer)
                    if tail_rows is not None and rrec.full_chunks == full_keep:
                        # This run's own sealed tail supplies the rows.
                        tailbuf.data[:rem] = tail_rows[:rem]
                        tailbuf.n = rem
                        if rem == rrec.sealed_tail_tokens:
                            manager._sealed_partial.add(run_key)
                            live.add(boundary_key)
                        else:
                            # A shorter run truncated the context below this
                            # sealed tail; its device copy holds too many
                            # rows — drop it, the next seal rewrites.
                            device.delete(boundary_key)
                    elif full_keep < rrec.full_chunks:
                        # The durable cut lands inside one of this run's
                        # full chunks: salvage the prefix into the host
                        # tail; the over-long chunk cannot stay (reads and
                        # reseals assume exact shapes).
                        payload, _ = device.read(boundary_key)
                        tailbuf.data[:rem] = payload[:rem]
                        tailbuf.n = rem
                        device.delete(boundary_key)
                    else:
                        raise RecoveryError(
                            f"run ({context_id!r}, L{layer}, {kind}): {rem} durable "
                            f"rows have no durable source"
                        )
                for index in range(full_keep):
                    key = ChunkKey(context_id, layer, index, kind)
                    live.add(key)
                    if index in rrec.chunk_crcs:
                        manager._chunk_crcs[key] = rrec.chunk_crcs[index]
        # Orphan sweep: device chunks no journaled run accounts for — the
        # crash artifacts of write-then-journal — plus everything truncated
        # above.  ``delete`` on a replicated device drops both copies.
        for device in array.devices:
            for key in device.keys():
                if isinstance(key, ChunkKey) and key not in live:
                    device.delete(key)
        manager.journal = journal
        manager.compact_journal()
        return manager

    # ------------------------------------------------------------------
    # restoration (token-before-layer)
    # ------------------------------------------------------------------

    def tokens_stored(self, context_id: str, layer: int, kind: str = "hidden") -> int:
        """Tokens currently stored for one layer (0 if the run is absent)."""
        if not self.allocator.has_run(context_id, layer, kind):
            return 0
        return self.allocator.run(context_id, layer, kind).n_tokens

    def load_layer(
        self,
        context_id: str,
        layer: int,
        kind: str = "hidden",
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fetch one layer's full token run as a ``(n_tokens, width)`` array.

        Preallocates the destination (or fills a caller-provided ``out``,
        e.g. one row-block of the batched restoration input) and reads
        every device-resident chunk directly into its row slice, then
        copies any host-buffered tail rows — no intermediate part list,
        no ``np.concatenate``.
        """
        meta = self.meta(context_id)
        run = self.allocator.run(context_id, layer, kind)
        tail = self._tails[(context_id, layer, kind)]
        n_tokens = run.n_tokens
        width = self._width(meta, kind)
        if out is None:
            out = np.empty((n_tokens, width), dtype=meta.dtype)
        elif out.shape != (n_tokens, width) or out.dtype != meta.dtype:
            raise ConfigError(
                f"out must be {(n_tokens, width)} of {meta.dtype}, "
                f"got {out.shape} of {out.dtype}"
            )
        flushed_tokens = n_tokens - tail.n
        cpc = self.tokens_per_chunk
        for chunk_index in range(flushed_tokens // cpc):
            key = ChunkKey(context_id, layer, chunk_index, kind)
            start = chunk_index * cpc
            self.array.device_for(chunk_index, offset=layer).read_into(
                key, out[start : start + cpc]
            )
        if tail.n:
            out[flushed_tokens:] = tail.data[: tail.n]
        return out

    def staging_ring(
        self,
        context_id: str,
        kind: str = "hidden",
        depth: int = 2,
        granule_chunks: int = 1,
    ) -> StagingRing:
        """Build a staging ring sized for one context's streamed reads.

        ``granule_chunks`` storage chunks are coalesced into each streamed
        granule: IO stays chunk-granular (every device chunk is a separate
        ``read_into``), but the consumer sees fewer, larger row blocks,
        which keeps the per-granule projection overhead amortized.
        """
        if granule_chunks <= 0:
            raise ConfigError("granule_chunks must be positive")
        meta = self.meta(context_id)
        return StagingRing(
            depth,
            granule_chunks * self.tokens_per_chunk,
            self._width(meta, kind),
            meta.dtype,
        )

    def granule_plan(
        self,
        context_id: str,
        layers: Sequence[int],
        kind: str = "hidden",
        granule_chunks: int = 1,
        start_tokens: int = 0,
    ) -> list[GranuleSpec]:
        """Enumerate the granules a streamed restore of ``layers`` covers.

        Pure metadata — no device is touched.  The specs come back in the
        exact order :meth:`stream_layers` yields data (layers in the given
        order, row ranges ascending within each layer), which is the order
        every consumer — single-threaded or threaded — must project in to
        stay bit-exact with the reference restore.  The threaded executor
        walks this plan to submit :meth:`read_granule_into` calls to its
        IO worker pool ahead of consumption.

        ``start_tokens`` skips rows ``[0, start_tokens)`` of every layer —
        the shared-prefix restore path reads only the non-shared suffix.
        It must be chunk-aligned (granule starts stay chunk boundaries,
        so the suffix stream reads the same device chunks a full stream
        would for those rows).
        """
        if granule_chunks <= 0:
            raise ConfigError("granule_chunks must be positive")
        if start_tokens < 0 or start_tokens % self.tokens_per_chunk != 0:
            raise ConfigError(
                f"start_tokens must be a non-negative multiple of the "
                f"{self.tokens_per_chunk}-token chunk size, got {start_tokens}"
            )
        self.meta(context_id)
        granule = granule_chunks * self.tokens_per_chunk
        plan: list[GranuleSpec] = []
        for layer in layers:
            n_tokens = self.allocator.run(context_id, layer, kind).n_tokens
            for gstart in range(start_tokens, n_tokens, granule):
                plan.append(
                    GranuleSpec(
                        layer=layer,
                        kind=kind,
                        start=gstart,
                        stop=min(gstart + granule, n_tokens),
                    )
                )
        return plan

    def read_granule_into(
        self, context_id: str, spec: GranuleSpec, out: np.ndarray
    ) -> tuple[float, int]:
        """Fill ``out`` with one granule's rows; return ``(io_seconds, reads)``.

        Device-resident chunks are read with :meth:`StorageDevice.read_into`
        straight into the destination's row slices (one read per chunk, so
        IO granularity and device busy accounting match :meth:`load_layer`
        exactly); host-buffered tail rows are slice-copied after them.

        Threading rules: this method is safe to run on an IO worker thread
        while another thread projects earlier granules — devices are
        read-only during restoration, the tail buffer is only appended to
        between restores, and ``out`` (a staging-ring slot slice) is owned
        by this call until it returns.  What is **not** allowed is saving
        into the same context concurrently with restoring it; the engine's
        save/restore lifecycle never does.
        """
        meta = self.meta(context_id)
        run = self.allocator.run(context_id, spec.layer, spec.kind)
        tail = self._tails[(context_id, spec.layer, spec.kind)]
        width = self._width(meta, spec.kind)
        if out.shape != (spec.n_tokens, width):
            raise ConfigError(
                f"granule destination must be {(spec.n_tokens, width)}, got {out.shape}"
            )
        cpc = self.tokens_per_chunk
        if spec.start % cpc != 0 or spec.stop > run.n_tokens:
            raise ConfigError(
                f"granule rows [{spec.start}, {spec.stop}) misaligned or out of range"
            )
        flushed_tokens = run.n_tokens - tail.n
        io_seconds = 0.0
        device_reads = 0
        device_stop = min(spec.stop, flushed_tokens)
        for start in range(spec.start, device_stop, cpc):
            chunk_index = start // cpc
            key = ChunkKey(context_id, spec.layer, chunk_index, spec.kind)
            receipt = self.array.device_for(chunk_index, offset=spec.layer).read_into(
                key, out[start - spec.start : start - spec.start + cpc]
            )
            io_seconds += receipt.seconds
            device_reads += 1
        if spec.stop > flushed_tokens:
            tail_start = max(spec.start, flushed_tokens)
            out[tail_start - spec.start :] = tail.data[
                tail_start - flushed_tokens : spec.stop - flushed_tokens
            ]
        return io_seconds, device_reads

    def stream_layer(
        self,
        context_id: str,
        layer: int,
        kind: str = "hidden",
        ring: StagingRing | None = None,
        start_tokens: int = 0,
    ) -> Iterator[LayerChunk]:
        """Stream one layer's token run as granule-sized row blocks.

        ``start_tokens`` (chunk-aligned) starts the stream mid-run,
        skipping rows a shared prefix already supplies.

        Yields :class:`LayerChunk` granules in row order, filled by the
        same :meth:`read_granule_into` the threaded executor calls from
        its worker pool — the two paths share one read implementation, so
        their IO accounting and their bytes are identical by construction.
        Each yielded view stays valid for ``ring.depth - 1`` further
        granules — enough for a double-buffered consumer that projects
        granule ``k`` while granule ``k+1``'s read is issued.

        The read for a granule happens when the iterator advances onto
        it, which is what lets a consumer overlap (in pipeline structure,
        and in the modelled timeline) reads with per-granule compute.
        This generator is single-threaded by contract: advance it from one
        thread only, and never concurrently with appends to the same
        context.  Off-thread filling is the executor's job, not this
        iterator's.
        """
        meta = self.meta(context_id)
        self.allocator.run(context_id, layer, kind)
        width = self._width(meta, kind)
        if ring is None:
            ring = self.staging_ring(context_id, kind)
        if ring.width != width:
            raise ConfigError(
                f"staging ring width {ring.width} mismatches {kind!r} width {width}"
            )
        cpc = self.tokens_per_chunk
        granule = ring.granule_tokens
        if granule % cpc != 0:
            raise ConfigError(
                f"granule of {granule} tokens must be a multiple of the "
                f"{cpc}-token chunk size"
            )
        for spec in self.granule_plan(
            context_id, [layer], kind, granule // cpc, start_tokens
        ):
            slot = ring.acquire()
            view = slot[: spec.n_tokens]
            io_seconds, device_reads = self.read_granule_into(context_id, spec, view)
            yield LayerChunk(
                layer=spec.layer,
                kind=spec.kind,
                start=spec.start,
                stop=spec.stop,
                data=view,
                io_seconds=io_seconds,
                device_reads=device_reads,
            )

    def stream_layers(
        self,
        context_id: str,
        layers: Sequence[int],
        kind: str = "hidden",
        ring: StagingRing | None = None,
        start_tokens: int = 0,
    ) -> Iterator[LayerChunk]:
        """Stream several layers back to back through one staging ring.

        Restoration consumes this as a single pipeline: the first granule
        of layer ``k+1`` can be read while the last granule of layer ``k``
        is still being projected — the §4.1 property that hidden-state
        transmission proceeds without per-layer synchronization.  Like
        :meth:`stream_layer`, the iterator itself is single-threaded; the
        threaded executor achieves the same granule order via
        :meth:`granule_plan` + :meth:`read_granule_into`, and both paths
        restore bit-identical state.
        """
        if ring is None and len(layers) > 0:
            ring = self.staging_ring(context_id, kind)
        for layer in layers:
            yield from self.stream_layer(context_id, layer, kind, ring, start_tokens)

    def layer_read_timing(
        self, context_id: str, layer: int, kind: str = "hidden"
    ) -> LayerReadTiming:
        """Modelled wall-clock cost of fetching one layer's chunks."""
        run = self.allocator.run(context_id, layer, kind)
        layout = run.layout
        return self.array.layer_read_timing(layout.chunks_for(run.n_tokens), layout.chunk_bytes)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def context_bytes(self, context_id: str) -> int:
        """Bytes of chunk capacity allocated to one context."""
        total = 0
        for layer in range(self.meta(context_id).n_layers):
            for kind in ("hidden", "kv"):
                if self.allocator.has_run(context_id, layer, kind):
                    total += self.allocator.run(context_id, layer, kind).allocated_bytes
        return total

    def per_token_bytes(self, context_id: str) -> float:
        """Average stored bytes per context token (Table 3's storage cost)."""
        meta = self.meta(context_id)
        n_tokens = max(
            (
                self.allocator.run(context_id, layer, kind).n_tokens
                for layer in range(meta.n_layers)
                for kind in ("hidden", "kv")
                if self.allocator.has_run(context_id, layer, kind)
            ),
            default=0,
        )
        if n_tokens == 0:
            return 0.0
        used = sum(
            self.allocator.run(context_id, layer, kind).used_bytes
            for layer in range(meta.n_layers)
            for kind in ("hidden", "kv")
            if self.allocator.has_run(context_id, layer, kind)
        )
        return used / n_tokens
