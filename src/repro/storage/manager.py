"""The HCache storage manager (§4.2).

Functionally stores hidden states (and, for scheduler-assigned layers, KV
pairs) in 64-token chunks striped round-robin over a storage array, and
reports the timing of layer-granularity reads for the restoration pipeline.

Saving follows the paper's lifecycle: states arrive layer-before-token as
generation proceeds; full chunks are flushed to devices immediately ("once
a chunk is fully populated, it is promptly written to the NVMe device",
§5), while the partially filled tail chunk stays in a host-side buffer
until :meth:`StorageManager.seal_context` or further appends fill it.
Restoration reads token-before-layer: one call fetches a whole layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConfigError, StateError
from repro.storage.allocator import ChunkAllocator
from repro.storage.array import LayerReadTiming, StorageArray
from repro.storage.chunk import CHUNK_TOKENS, ChunkKey, ChunkLayout
from repro.storage.streaming import GranuleSpec, LayerChunk, StagingRing


class _TailBuffer:
    """Preallocated staging buffer for one run's partially filled chunk.

    Exactly one chunk worth of rows, written by slice assignment — the
    hot saving path never builds Python lists of per-row copies nor calls
    ``np.stack`` to flush.
    """

    __slots__ = ("data", "n")

    def __init__(self, tokens_per_chunk: int, width: int, dtype: np.dtype) -> None:
        self.data = np.empty((tokens_per_chunk, width), dtype=dtype)
        self.n = 0


@dataclass(frozen=True)
class ContextMeta:
    """Shape information for one stored context.

    Attributes:
        context_id: Stable identity (conversation / document id).
        n_layers: Transformer layer count of the serving model.
        hidden_width: Per-token hidden-state element count.
        kv_width: Per-token KV element count (2x hidden for MHA).
        dtype: Element dtype of stored state.
    """

    context_id: str
    n_layers: int
    hidden_width: int
    kv_width: int
    dtype: np.dtype


class StorageManager:
    """Chunked host storage for contextual LLM states."""

    def __init__(
        self,
        array: StorageArray,
        capacity_bytes: int | None = None,
        tokens_per_chunk: int = CHUNK_TOKENS,
    ) -> None:
        if tokens_per_chunk <= 0:
            raise ConfigError("tokens_per_chunk must be positive")
        total_capacity = capacity_bytes
        if total_capacity is None:
            total_capacity = sum(d.capacity_bytes for d in array.devices)
        self.array = array
        self.tokens_per_chunk = tokens_per_chunk
        self.allocator = ChunkAllocator(total_capacity)
        self._meta: dict[str, ContextMeta] = {}
        #: Host-side partially filled tail chunks: run key -> staging buffer.
        self._tails: dict[tuple[str, int, str], _TailBuffer] = {}
        #: Runs whose tail is also persisted on a device as a partial chunk
        #: (written by seal_context; rewritten when the chunk later fills).
        self._sealed_partial: set[tuple[str, int, str]] = set()

    # ------------------------------------------------------------------
    # context lifecycle
    # ------------------------------------------------------------------

    def register_context(
        self,
        context_id: str,
        n_layers: int,
        hidden_width: int,
        dtype: np.dtype | type = np.float32,
    ) -> ContextMeta:
        """Declare a context before saving any of its state."""
        if context_id in self._meta:
            raise StateError(f"context {context_id!r} already registered")
        if n_layers <= 0 or hidden_width <= 0:
            raise ConfigError("context needs positive layer count and hidden width")
        meta = ContextMeta(
            context_id=context_id,
            n_layers=n_layers,
            hidden_width=hidden_width,
            kv_width=2 * hidden_width,
            dtype=np.dtype(dtype),
        )
        self._meta[context_id] = meta
        return meta

    def has_context(self, context_id: str) -> bool:
        return context_id in self._meta

    def meta(self, context_id: str) -> ContextMeta:
        if context_id not in self._meta:
            raise StateError(f"context {context_id!r} not registered")
        return self._meta[context_id]

    def free_context(self, context_id: str) -> int:
        """Drop a context's state everywhere, returning bytes freed.

        A registered context may own no runs at all — a pure-recompute
        partition never stores state, and sessions can close before their
        first save — so freeing is a no-op for the allocator in that case.
        """
        meta = self.meta(context_id)
        freed = 0
        if self.allocator.has_context_runs(context_id):
            freed = self.allocator.free_context(context_id)
        for key in [k for k in self._tails if k[0] == context_id]:
            del self._tails[key]
            self._sealed_partial.discard(key)
        for device in self.array.devices:
            for key in device.keys():
                if isinstance(key, ChunkKey) and key.context_id == context_id:
                    device.delete(key)
        del self._meta[meta.context_id]
        return freed

    def context_ids(self) -> tuple[str, ...]:
        return tuple(self._meta)

    # ------------------------------------------------------------------
    # saving (layer-before-token)
    # ------------------------------------------------------------------

    def _layout(self, meta: ContextMeta, kind: str) -> ChunkLayout:
        width = meta.hidden_width if kind == "hidden" else meta.kv_width
        return ChunkLayout(
            tokens_per_chunk=self.tokens_per_chunk,
            bytes_per_token=width * meta.dtype.itemsize,
        )

    def _width(self, meta: ContextMeta, kind: str) -> int:
        return meta.hidden_width if kind == "hidden" else meta.kv_width

    def append(self, context_id: str, layer: int, states: np.ndarray, kind: str = "hidden") -> None:
        """Append per-token state rows for one layer of a context.

        ``states`` has shape ``(n_new_tokens, width)`` where width is the
        hidden size for ``kind="hidden"`` and twice that for ``kind="kv"``
        (K and V concatenated).  Full chunks are flushed to their
        round-robin device; the tail remains host-buffered.
        """
        meta = self.meta(context_id)
        if layer < 0 or layer >= meta.n_layers:
            raise ConfigError(f"layer {layer} out of range for {context_id!r}")
        states = np.asarray(states, dtype=meta.dtype)
        if states.ndim != 2 or states.shape[1] != self._width(meta, kind):
            raise ConfigError(
                f"states must be (n, {self._width(meta, kind)}), got {states.shape}"
            )
        run_key = (context_id, layer, kind)
        if not self.allocator.has_run(context_id, layer, kind):
            self.allocator.open_run(context_id, layer, kind, self._layout(meta, kind))
            self._tails[run_key] = _TailBuffer(
                self.tokens_per_chunk, self._width(meta, kind), meta.dtype
            )
        tail = self._tails[run_key]
        run = self.allocator.run(context_id, layer, kind)
        flushed_tokens = run.n_tokens - tail.n
        if run_key in self._sealed_partial:
            # The tail chunk was persisted at the last seal; it grows now,
            # so retire the stale partial copy (the host buffer still holds
            # the rows) and rewrite it once it fills or is sealed again.
            partial_index = flushed_tokens // self.tokens_per_chunk
            key = ChunkKey(context_id, layer, partial_index, kind)
            self.array.device_for(partial_index, offset=layer).delete(key)
            self._sealed_partial.discard(run_key)
        self.allocator.extend(context_id, layer, kind, states.shape[0])
        # Stream the block through: aligned full chunks flush as slice
        # views of the input (the device snapshots them); the remainder
        # lands in the preallocated tail by slice assignment.
        cpc = self.tokens_per_chunk

        def flush_chunk(payload: np.ndarray) -> None:
            nonlocal flushed_tokens
            chunk_index = flushed_tokens // cpc
            key = ChunkKey(context_id, layer, chunk_index, kind)
            self.array.device_for(chunk_index, offset=layer).write(key, payload)
            flushed_tokens += cpc

        pos = 0
        n_new = states.shape[0]
        while pos < n_new:
            if tail.n == 0 and n_new - pos >= cpc:
                flush_chunk(states[pos : pos + cpc])
                pos += cpc
                continue
            take = min(cpc - tail.n, n_new - pos)
            tail.data[tail.n : tail.n + take] = states[pos : pos + take]
            tail.n += take
            pos += take
            if tail.n == cpc:
                flush_chunk(tail.data)
                tail.n = 0

    def seal_context(self, context_id: str) -> None:
        """Flush every partially filled tail chunk to its device.

        Called when a conversation round ends and the context's GPU state
        is evicted — afterwards all state also lives on the storage
        devices.  The host buffer keeps the tail rows so a later round can
        grow the partial chunk (it is then rewritten, write-once devices
        cannot append in place).
        """
        self.meta(context_id)
        for run_key in list(self._tails):
            ctx, layer, kind = run_key
            if ctx != context_id:
                continue
            tail = self._tails[run_key]
            if tail.n == 0 or run_key in self._sealed_partial:
                continue
            run = self.allocator.run(ctx, layer, kind)
            flushed_tokens = run.n_tokens - tail.n
            if flushed_tokens % self.tokens_per_chunk != 0:
                raise StateError("tail must start at a chunk boundary")
            chunk_index = flushed_tokens // self.tokens_per_chunk
            key = ChunkKey(ctx, layer, chunk_index, kind)
            self.array.device_for(chunk_index, offset=layer).write(key, tail.data[: tail.n])
            self._sealed_partial.add(run_key)

    # ------------------------------------------------------------------
    # restoration (token-before-layer)
    # ------------------------------------------------------------------

    def tokens_stored(self, context_id: str, layer: int, kind: str = "hidden") -> int:
        """Tokens currently stored for one layer (0 if the run is absent)."""
        if not self.allocator.has_run(context_id, layer, kind):
            return 0
        return self.allocator.run(context_id, layer, kind).n_tokens

    def load_layer(
        self,
        context_id: str,
        layer: int,
        kind: str = "hidden",
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fetch one layer's full token run as a ``(n_tokens, width)`` array.

        Preallocates the destination (or fills a caller-provided ``out``,
        e.g. one row-block of the batched restoration input) and reads
        every device-resident chunk directly into its row slice, then
        copies any host-buffered tail rows — no intermediate part list,
        no ``np.concatenate``.
        """
        meta = self.meta(context_id)
        run = self.allocator.run(context_id, layer, kind)
        tail = self._tails[(context_id, layer, kind)]
        n_tokens = run.n_tokens
        width = self._width(meta, kind)
        if out is None:
            out = np.empty((n_tokens, width), dtype=meta.dtype)
        elif out.shape != (n_tokens, width) or out.dtype != meta.dtype:
            raise ConfigError(
                f"out must be {(n_tokens, width)} of {meta.dtype}, "
                f"got {out.shape} of {out.dtype}"
            )
        flushed_tokens = n_tokens - tail.n
        cpc = self.tokens_per_chunk
        for chunk_index in range(flushed_tokens // cpc):
            key = ChunkKey(context_id, layer, chunk_index, kind)
            start = chunk_index * cpc
            self.array.device_for(chunk_index, offset=layer).read_into(
                key, out[start : start + cpc]
            )
        if tail.n:
            out[flushed_tokens:] = tail.data[: tail.n]
        return out

    def staging_ring(
        self,
        context_id: str,
        kind: str = "hidden",
        depth: int = 2,
        granule_chunks: int = 1,
    ) -> StagingRing:
        """Build a staging ring sized for one context's streamed reads.

        ``granule_chunks`` storage chunks are coalesced into each streamed
        granule: IO stays chunk-granular (every device chunk is a separate
        ``read_into``), but the consumer sees fewer, larger row blocks,
        which keeps the per-granule projection overhead amortized.
        """
        if granule_chunks <= 0:
            raise ConfigError("granule_chunks must be positive")
        meta = self.meta(context_id)
        return StagingRing(
            depth,
            granule_chunks * self.tokens_per_chunk,
            self._width(meta, kind),
            meta.dtype,
        )

    def granule_plan(
        self,
        context_id: str,
        layers: Sequence[int],
        kind: str = "hidden",
        granule_chunks: int = 1,
    ) -> list[GranuleSpec]:
        """Enumerate the granules a streamed restore of ``layers`` covers.

        Pure metadata — no device is touched.  The specs come back in the
        exact order :meth:`stream_layers` yields data (layers in the given
        order, row ranges ascending within each layer), which is the order
        every consumer — single-threaded or threaded — must project in to
        stay bit-exact with the reference restore.  The threaded executor
        walks this plan to submit :meth:`read_granule_into` calls to its
        IO worker pool ahead of consumption.
        """
        if granule_chunks <= 0:
            raise ConfigError("granule_chunks must be positive")
        self.meta(context_id)
        granule = granule_chunks * self.tokens_per_chunk
        plan: list[GranuleSpec] = []
        for layer in layers:
            n_tokens = self.allocator.run(context_id, layer, kind).n_tokens
            for gstart in range(0, n_tokens, granule):
                plan.append(
                    GranuleSpec(
                        layer=layer,
                        kind=kind,
                        start=gstart,
                        stop=min(gstart + granule, n_tokens),
                    )
                )
        return plan

    def read_granule_into(
        self, context_id: str, spec: GranuleSpec, out: np.ndarray
    ) -> tuple[float, int]:
        """Fill ``out`` with one granule's rows; return ``(io_seconds, reads)``.

        Device-resident chunks are read with :meth:`StorageDevice.read_into`
        straight into the destination's row slices (one read per chunk, so
        IO granularity and device busy accounting match :meth:`load_layer`
        exactly); host-buffered tail rows are slice-copied after them.

        Threading rules: this method is safe to run on an IO worker thread
        while another thread projects earlier granules — devices are
        read-only during restoration, the tail buffer is only appended to
        between restores, and ``out`` (a staging-ring slot slice) is owned
        by this call until it returns.  What is **not** allowed is saving
        into the same context concurrently with restoring it; the engine's
        save/restore lifecycle never does.
        """
        meta = self.meta(context_id)
        run = self.allocator.run(context_id, spec.layer, spec.kind)
        tail = self._tails[(context_id, spec.layer, spec.kind)]
        width = self._width(meta, spec.kind)
        if out.shape != (spec.n_tokens, width):
            raise ConfigError(
                f"granule destination must be {(spec.n_tokens, width)}, got {out.shape}"
            )
        cpc = self.tokens_per_chunk
        if spec.start % cpc != 0 or spec.stop > run.n_tokens:
            raise ConfigError(
                f"granule rows [{spec.start}, {spec.stop}) misaligned or out of range"
            )
        flushed_tokens = run.n_tokens - tail.n
        io_seconds = 0.0
        device_reads = 0
        device_stop = min(spec.stop, flushed_tokens)
        for start in range(spec.start, device_stop, cpc):
            chunk_index = start // cpc
            key = ChunkKey(context_id, spec.layer, chunk_index, spec.kind)
            receipt = self.array.device_for(chunk_index, offset=spec.layer).read_into(
                key, out[start - spec.start : start - spec.start + cpc]
            )
            io_seconds += receipt.seconds
            device_reads += 1
        if spec.stop > flushed_tokens:
            tail_start = max(spec.start, flushed_tokens)
            out[tail_start - spec.start :] = tail.data[
                tail_start - flushed_tokens : spec.stop - flushed_tokens
            ]
        return io_seconds, device_reads

    def stream_layer(
        self,
        context_id: str,
        layer: int,
        kind: str = "hidden",
        ring: StagingRing | None = None,
    ) -> Iterator[LayerChunk]:
        """Stream one layer's token run as granule-sized row blocks.

        Yields :class:`LayerChunk` granules in row order, filled by the
        same :meth:`read_granule_into` the threaded executor calls from
        its worker pool — the two paths share one read implementation, so
        their IO accounting and their bytes are identical by construction.
        Each yielded view stays valid for ``ring.depth - 1`` further
        granules — enough for a double-buffered consumer that projects
        granule ``k`` while granule ``k+1``'s read is issued.

        The read for a granule happens when the iterator advances onto
        it, which is what lets a consumer overlap (in pipeline structure,
        and in the modelled timeline) reads with per-granule compute.
        This generator is single-threaded by contract: advance it from one
        thread only, and never concurrently with appends to the same
        context.  Off-thread filling is the executor's job, not this
        iterator's.
        """
        meta = self.meta(context_id)
        self.allocator.run(context_id, layer, kind)
        width = self._width(meta, kind)
        if ring is None:
            ring = self.staging_ring(context_id, kind)
        if ring.width != width:
            raise ConfigError(
                f"staging ring width {ring.width} mismatches {kind!r} width {width}"
            )
        cpc = self.tokens_per_chunk
        granule = ring.granule_tokens
        if granule % cpc != 0:
            raise ConfigError(
                f"granule of {granule} tokens must be a multiple of the "
                f"{cpc}-token chunk size"
            )
        for spec in self.granule_plan(context_id, [layer], kind, granule // cpc):
            slot = ring.acquire()
            view = slot[: spec.n_tokens]
            io_seconds, device_reads = self.read_granule_into(context_id, spec, view)
            yield LayerChunk(
                layer=spec.layer,
                kind=spec.kind,
                start=spec.start,
                stop=spec.stop,
                data=view,
                io_seconds=io_seconds,
                device_reads=device_reads,
            )

    def stream_layers(
        self,
        context_id: str,
        layers: Sequence[int],
        kind: str = "hidden",
        ring: StagingRing | None = None,
    ) -> Iterator[LayerChunk]:
        """Stream several layers back to back through one staging ring.

        Restoration consumes this as a single pipeline: the first granule
        of layer ``k+1`` can be read while the last granule of layer ``k``
        is still being projected — the §4.1 property that hidden-state
        transmission proceeds without per-layer synchronization.  Like
        :meth:`stream_layer`, the iterator itself is single-threaded; the
        threaded executor achieves the same granule order via
        :meth:`granule_plan` + :meth:`read_granule_into`, and both paths
        restore bit-identical state.
        """
        if ring is None and len(layers) > 0:
            ring = self.staging_ring(context_id, kind)
        for layer in layers:
            yield from self.stream_layer(context_id, layer, kind, ring)

    def layer_read_timing(
        self, context_id: str, layer: int, kind: str = "hidden"
    ) -> LayerReadTiming:
        """Modelled wall-clock cost of fetching one layer's chunks."""
        run = self.allocator.run(context_id, layer, kind)
        layout = run.layout
        return self.array.layer_read_timing(layout.chunks_for(run.n_tokens), layout.chunk_bytes)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def context_bytes(self, context_id: str) -> int:
        """Bytes of chunk capacity allocated to one context."""
        total = 0
        for layer in range(self.meta(context_id).n_layers):
            for kind in ("hidden", "kv"):
                if self.allocator.has_run(context_id, layer, kind):
                    total += self.allocator.run(context_id, layer, kind).allocated_bytes
        return total

    def per_token_bytes(self, context_id: str) -> float:
        """Average stored bytes per context token (Table 3's storage cost)."""
        meta = self.meta(context_id)
        n_tokens = max(
            (
                self.allocator.run(context_id, layer, kind).n_tokens
                for layer in range(meta.n_layers)
                for kind in ("hidden", "kv")
                if self.allocator.has_run(context_id, layer, kind)
            ),
            default=0,
        )
        if n_tokens == 0:
            return 0.0
        used = sum(
            self.allocator.run(context_id, layer, kind).used_bytes
            for layer in range(meta.n_layers)
            for kind in ("hidden", "kv")
            if self.allocator.has_run(context_id, layer, kind)
        )
        return used / n_tokens
