"""Tiered DRAM + SSD storage backend (§4 extension).

The paper's storage manager defaults to SSDs but notes that prior work
(AttentionStore) layers host DRAM above them with hotness-based placement
and prefetching, and that such caching "is orthogonal to our work and can
be incorporated to enhance performance further".  This module incorporates
it: contexts are promoted into a bounded DRAM tier on access (LRU), reads
of DRAM-resident contexts bypass the SSD array, and an explicit prefetch
hook warms contexts ahead of a predicted reuse (e.g. the fixed 30 s round
interval of multi-turn chat).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simulator.hardware import DRAMSpec
from repro.storage.array import StorageArray


@dataclass(frozen=True)
class TieredReadTiming:
    """Outcome of a tiered layer read.

    Attributes:
        seconds: Modelled read time.
        tier: ``"dram"`` or ``"ssd"``.
    """

    seconds: float
    tier: str


@dataclass(frozen=True)
class TieredStreamTiming:
    """Chunk-granular timing of one tiered read.

    The restoration pipeline consumes reads chunk by chunk so projections
    can overlap the remaining transfer; this carries the per-chunk
    modelled seconds it needs to build that timeline.

    Attributes:
        chunk_seconds: Modelled read time of each streamed chunk, in
            arrival order.
        tier: ``"dram"`` or ``"ssd"``.
    """

    chunk_seconds: tuple[float, ...]
    tier: str

    @property
    def seconds(self) -> float:
        """Total transfer time (what a non-streaming read would charge)."""
        return sum(self.chunk_seconds)

    @property
    def n_chunks(self) -> int:
        return len(self.chunk_seconds)


class TieredBackend:
    """DRAM-over-SSD placement with LRU promotion and prefetch.

    Keeps its own resident-set bookkeeping (an ordered dict in recency
    order) rather than depending on :mod:`repro.cache` — storage is a
    lower layer than the GPU-cache package, which builds on the serving
    baselines.
    """

    def __init__(
        self,
        array: StorageArray,
        dram: DRAMSpec | None = None,
        dram_capacity_bytes: int = 64 * 1024**3,
        link_bandwidth: float | None = None,
        io_parallelism: int = 1,
    ) -> None:
        """``io_parallelism`` models the restore executor's IO worker pool
        keeping that many chunk reads in flight against the SSD array
        (NVMe queue depth): per-IO latency amortizes across overlapped
        operations while bandwidth stays capped — see
        :meth:`StorageArray.layer_read_timing`.  1 (the default) is the
        pre-executor serial-read behaviour."""
        if dram_capacity_bytes <= 0:
            raise ConfigError("DRAM tier capacity must be positive")
        if io_parallelism < 1:
            raise ConfigError("io_parallelism must be at least 1")
        self.array = array
        self.dram = dram if dram is not None else DRAMSpec()
        self.dram_capacity_bytes = int(dram_capacity_bytes)
        self.io_parallelism = io_parallelism
        self.link_bandwidth = (
            link_bandwidth if link_bandwidth is not None else array.link_bandwidth
        )
        self._resident: OrderedDict[str, int] = OrderedDict()
        self._resident_bytes = 0
        self._hits = 0
        self._misses = 0

    @property
    def dram_hit_ratio(self) -> float:
        accesses = self._hits + self._misses
        if accesses == 0:
            return 0.0
        return self._hits / accesses

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    def is_resident(self, context_id: str) -> bool:
        return context_id in self._resident

    def _promote(self, context_id: str, nbytes: int) -> None:
        if context_id in self._resident:
            self._resident_bytes -= self._resident.pop(context_id)
        while self._resident and self._resident_bytes + nbytes > self.dram_capacity_bytes:
            _, evicted = self._resident.popitem(last=False)
            self._resident_bytes -= evicted
        if nbytes <= self.dram_capacity_bytes:
            self._resident[context_id] = nbytes
            self._resident_bytes += nbytes

    def prefetch(self, context_id: str, nbytes: int) -> float:
        """Warm a context into DRAM ahead of its predicted reuse.

        Returns the (background) SSD-to-DRAM copy time; it does not count
        against any foreground restoration nor against the hit statistics.
        A context that is already DRAM-resident only copies whatever grew
        since it was promoted (the common ``finish_round`` after a warm
        read copies nothing at all) — re-warming resident bytes is free.
        """
        if nbytes <= 0:
            raise ConfigError("prefetch size must be positive")
        resident_bytes = self._resident.get(context_id, 0)
        self._promote(context_id, nbytes)
        copy_bytes = max(0, nbytes - resident_bytes)
        if copy_bytes == 0:
            return 0.0
        chunk_bytes = max(1, nbytes // 16)
        return self.array.read_time(copy_bytes, chunk_bytes, self.io_parallelism)

    def _stream_chunk_seconds(
        self, tier: str, nbytes: int, chunk_bytes: int
    ) -> tuple[float, ...]:
        """Per-chunk modelled seconds of streaming ``nbytes`` from a tier.

        Chunks arrive back to back at the tier's aggregate bandwidth: the
        SSD array stripes every chunk across its devices (so per-chunk
        time is the striped total split evenly), DRAM streams at the
        host-link/DRAM floor.  Total time is identical to a whole-context
        read; the split is what lets restoration overlap compute with the
        remaining transfer.
        """
        n_chunks = math.ceil(nbytes / chunk_bytes)
        sizes = [chunk_bytes] * n_chunks
        sizes[-1] = nbytes - chunk_bytes * (n_chunks - 1)
        if tier == "dram":
            bandwidth = min(self.link_bandwidth, self.dram.bandwidth)
            return tuple(size / bandwidth for size in sizes)
        total = self.array.read_time(nbytes, chunk_bytes, self.io_parallelism)
        return tuple(total * size / nbytes for size in sizes)

    def read_streamed(
        self, context_id: str, nbytes: int, chunk_bytes: int
    ) -> TieredStreamTiming:
        """Demand-read a context chunk by chunk, promoting it into DRAM.

        DRAM-resident contexts stream at the host link speed; others pay
        the SSD array and become resident for next time (§4's hierarchical
        backend behaviour).  The returned per-chunk times feed the
        chunk-granular restoration pipeline — warm and cold reads stream
        through this same code path.
        """
        if nbytes <= 0 or chunk_bytes <= 0:
            raise ConfigError("read sizes must be positive")
        hit = self.is_resident(context_id)
        if hit:
            self._hits += 1
        else:
            self._misses += 1
        self._promote(context_id, nbytes)
        tier = "dram" if hit else "ssd"
        return TieredStreamTiming(
            chunk_seconds=self._stream_chunk_seconds(tier, nbytes, chunk_bytes),
            tier=tier,
        )

    def read(self, context_id: str, nbytes: int, chunk_bytes: int) -> TieredReadTiming:
        """Whole-context view of :meth:`read_streamed` (same code path)."""
        streamed = self.read_streamed(context_id, nbytes, chunk_bytes)
        return TieredReadTiming(seconds=streamed.seconds, tier=streamed.tier)

    def evict(self, context_id: str) -> None:
        """Drop a context from the DRAM tier (SSD copy remains)."""
        if context_id in self._resident:
            self._resident_bytes -= self._resident.pop(context_id)
