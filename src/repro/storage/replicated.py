"""Two-way replicated chunk storage with failover reads.

DéjàVu-style durability: since sealed state already streams to devices,
tolerating a device loss only needs each chunk written twice.  A
:class:`ReplicatedDevice` pairs a *primary* with a *mirror* and presents
the plain :class:`~repro.storage.device.StorageDevice` interface, so the
storage manager, the streamed restore path, and the threaded executor all
work unchanged over a replicated array:

- **Writes** go to the primary first, then the mirror; a chunk is
  considered durable when both copies exist (the manager journals it only
  after ``write`` returns).
- **Reads** try the primary and fall back to the mirror only on a
  :class:`~repro.errors.DeviceFault` — a real failure signal.  Logical
  errors (missing key, shape mismatch) propagate unchanged: they mean the
  caller is wrong, not the hardware.  Failovers are counted as
  ``degraded_reads`` in the device stats.
- **Timing**: mirrored writes charge both devices (and both contribute
  busy time); a degraded read charges the mirror.  The failed primary
  attempt costs nothing in the model — fault detection latency is not
  modelled.

Fault injection attaches to the replicas, not the wrapper: script
``device.primary.fault_policy`` (or ``.mirror``) to kill one copy.
"""

from __future__ import annotations

import threading
from typing import Hashable

import numpy as np

from repro.errors import DeviceFault
from repro.storage.device import IOReceipt, LatencyEmulator, StorageDevice


class ReplicatedDevice:
    """A primary/mirror device pair behind the single-device interface."""

    def __init__(self, primary: StorageDevice, mirror: StorageDevice) -> None:
        self.primary = primary
        self.mirror = mirror
        self._stats_lock = threading.Lock()
        self._degraded_reads = 0  # guarded-by: _stats_lock

    # -- identity and capacity (the primary fronts the pair) -----------

    @property
    def spec(self):
        return self.primary.spec

    @property
    def device_id(self) -> int:
        return self.primary.device_id

    @property
    def name(self) -> str:
        return f"{self.primary.name}+{self.mirror.name}"

    @property
    def capacity_bytes(self) -> int:
        """Logical capacity: every byte must fit on both replicas."""
        return min(self.primary.capacity_bytes, self.mirror.capacity_bytes)

    @property
    def used_bytes(self) -> int:
        """Logical bytes stored (one replica's worth, not the sum)."""
        return max(self.primary.used_bytes, self.mirror.used_bytes)

    @property
    def busy_seconds(self) -> float:
        return self.primary.busy_seconds + self.mirror.busy_seconds

    @property
    def op_counts(self) -> tuple[int, int]:
        reads = self.primary.op_counts[0] + self.mirror.op_counts[0]
        writes = self.primary.op_counts[1] + self.mirror.op_counts[1]
        return reads, writes

    @property
    def degraded_reads(self) -> int:
        """Reads served by the mirror after a primary fault."""
        with self._stats_lock:
            return self._degraded_reads

    # -- latency emulation fans out to both replicas -------------------

    @property
    def emulator(self) -> LatencyEmulator | None:
        return self.primary.emulator

    @emulator.setter
    def emulator(self, emulator: LatencyEmulator | None) -> None:
        self.primary.emulator = emulator
        self.mirror.emulator = emulator

    # -- storage interface ---------------------------------------------

    def __contains__(self, key: Hashable) -> bool:
        return key in self.primary or key in self.mirror

    def keys(self) -> tuple[Hashable, ...]:
        merged = dict.fromkeys(self.primary.keys())
        merged.update(dict.fromkeys(self.mirror.keys()))
        return tuple(merged)

    def _note_degraded(self) -> None:
        with self._stats_lock:
            self._degraded_reads += 1

    def write(self, key: Hashable, payload: np.ndarray) -> IOReceipt:
        """Write to primary then mirror; durable only when both succeed.

        A fault on either replica propagates: the caller must not journal
        a chunk whose mirrored copy does not exist (crash-consistency
        would silently drop to one replica).  The receipt reports the
        payload once with both replicas' seconds, matching the serial
        write path the timing model charges.
        """
        first = self.primary.write(key, payload)
        second = self.mirror.write(key, payload)
        return IOReceipt(first.nbytes, first.seconds + second.seconds)

    def read(self, key: Hashable) -> tuple[np.ndarray, IOReceipt]:
        try:
            return self.primary.read(key)
        except DeviceFault:
            self._note_degraded()
            return self.mirror.read(key)

    def read_into(self, key: Hashable, out: np.ndarray) -> IOReceipt:
        """Fill ``out`` from the primary, failing over to the mirror.

        A faulted primary read never touches ``out`` (the fault gate fires
        before any copy), so retrying the same staging slot against the
        mirror is safe — including from the restore executor's IO worker
        threads; the degraded-read counter is lock-guarded.
        """
        try:
            return self.primary.read_into(key, out)
        except DeviceFault:
            self._note_degraded()
            return self.mirror.read_into(key, out)

    def delete(self, key: Hashable) -> int:
        """Drop every replica of a chunk, returning logical bytes freed."""
        freed = 0
        for replica in (self.primary, self.mirror):
            if key in replica:
                freed = max(freed, replica.delete(key))
        return freed
