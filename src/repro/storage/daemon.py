"""Host flush daemon model (§4.2.2, §5).

The real system runs 8 background host threads that collect hidden states
snapshotted from the GPU, pack them into chunk buffers, and flush full
chunks to NVMe.  For the performance model, the daemon is a work-conserving
server with a byte backlog: snapshots enqueue bytes at some simulation
time, and the backlog drains at the array's write bandwidth.  Saving stalls
the GPU only if the host-side staging buffer would overflow — which, per
the paper's measurements (§6.3.3), never happens because decode-phase
hidden-state production is far below PCIe and SSD write bandwidth.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError


@dataclass(frozen=True)
class SnapshotOutcome:
    """Result of offering a snapshot to the daemon.

    Attributes:
        stall_seconds: GPU-visible stall caused by staging-buffer pressure.
        backlog_bytes: Daemon backlog immediately after the snapshot.
    """

    stall_seconds: float
    backlog_bytes: int


class FlushDaemon:
    """Work-conserving background flusher with a bounded staging buffer.

    **Crash-loss window.**  Bytes become crash-safe only once they are
    both flushed to the device *and* covered by an fsync barrier, which
    the daemon issues every ``fsync_interval`` simulated seconds.  A crash
    at time *t* therefore loses at most the staging backlog (accepted but
    not yet flushed) plus up to ``fsync_interval`` seconds' worth of
    flushed-but-unsynced bytes — observable as :attr:`unsynced_bytes`,
    with :meth:`unsynced_backlog_age` bounding how stale the oldest
    unsynced byte is.  Shrinking ``fsync_interval`` tightens the token-loss
    bound at the cost of more barrier operations.  Barriers are evaluated
    at event granularity: the daemon only acts inside :meth:`advance` /
    :meth:`snapshot` calls, so a barrier "due" between two events is
    issued at the next event, exactly like the metadata journal's
    ``fsync_every`` batching.
    """

    def __init__(
        self,
        write_bandwidth: float,
        staging_bytes: int = 4 * 1024**3,
        n_threads: int = 8,
        fsync_interval: float = 0.05,
    ) -> None:
        if write_bandwidth <= 0:
            raise ConfigError("daemon write bandwidth must be positive")
        if staging_bytes <= 0:
            raise ConfigError("staging buffer must be positive")
        if n_threads <= 0:
            raise ConfigError("daemon needs at least one thread")
        if fsync_interval <= 0:
            raise ConfigError("fsync interval must be positive")
        self.write_bandwidth = float(write_bandwidth)
        self.staging_bytes = int(staging_bytes)
        self.n_threads = n_threads
        self.fsync_interval = float(fsync_interval)
        self._lock = threading.Lock()
        self._backlog = 0.0  # guarded-by: _lock
        self._last_time = 0.0  # guarded-by: _lock
        self._total_flushed = 0.0  # guarded-by: _lock
        self._total_stall = 0.0  # guarded-by: _lock
        self._total_accepted = 0.0  # guarded-by: _lock
        self._durable_bytes = 0.0  # guarded-by: _lock
        self._last_fsync = 0.0  # guarded-by: _lock
        self._oldest_unsynced_at: float | None = None  # guarded-by: _lock

    @property
    def backlog_bytes(self) -> int:
        with self._lock:
            return int(self._backlog)

    @property
    def total_flushed_bytes(self) -> int:
        with self._lock:
            return int(self._total_flushed)

    @property
    def total_stall_seconds(self) -> float:
        with self._lock:
            return self._total_stall

    @property
    def unsynced_bytes(self) -> int:
        """Accepted bytes not yet covered by an fsync barrier.

        The crash-loss bound in bytes: the staging backlog plus whatever
        was flushed since the last barrier.
        """
        with self._lock:
            return int(self._total_accepted - self._durable_bytes)

    @property
    def last_fsync_time(self) -> float:
        """Simulation time of the most recent fsync barrier."""
        with self._lock:
            return self._last_fsync

    def unsynced_backlog_age(self, now: float) -> float:
        """Seconds the *oldest* unsynced byte has been waiting at ``now``.

        0 when everything accepted so far is durable.  Under steady load
        this hovers around ``fsync_interval`` plus the flush delay; a
        growing age means barriers (or flushes) are falling behind and
        the crash-loss window is widening.
        """
        with self._lock:
            if self._oldest_unsynced_at is None:
                return 0.0
            return max(0.0, now - self._oldest_unsynced_at)

    def _advance_locked(self, now: float) -> None:  # holds: _lock
        if now < self._last_time - 1e-12:
            raise SimulationError("daemon time moved backwards")
        elapsed = max(0.0, now - self._last_time)
        drained = min(self._backlog, elapsed * self.write_bandwidth)
        self._backlog -= drained
        self._total_flushed += drained
        self._last_time = max(self._last_time, now)
        if self._last_time - self._last_fsync >= self.fsync_interval:
            self._durable_bytes = self._total_flushed
            self._last_fsync = self._last_time
            if int(self._total_accepted - self._durable_bytes) == 0:
                self._oldest_unsynced_at = None
            else:
                # The backlog bytes still pending arrived no earlier than
                # the previous event; age restarts from this barrier.
                self._oldest_unsynced_at = self._last_time

    def advance(self, now: float) -> None:
        """Drain the backlog up to simulation time ``now``.

        Also issues the periodic fsync barrier when one has come due:
        everything flushed by then becomes durable.
        """
        with self._lock:
            self._advance_locked(now)

    def snapshot(self, nbytes: int, now: float) -> SnapshotOutcome:
        """Accept ``nbytes`` of snapshotted states at time ``now``.

        If the staging buffer cannot absorb the snapshot, the GPU stalls for
        exactly the time the daemon needs to free enough space.  The whole
        accept — drain, stall computation, enqueue — happens under one lock
        acquisition, so concurrent snapshots serialize instead of both
        claiming the same free staging space.
        """
        if nbytes < 0:
            raise ConfigError("snapshot size must be non-negative")
        with self._lock:
            self._advance_locked(now)
            overflow = self._backlog + nbytes - self.staging_bytes
            stall = 0.0
            if overflow > 0:
                stall = overflow / self.write_bandwidth
                self._advance_locked(now + stall)
            self._backlog += nbytes
            self._total_stall += stall
            self._total_accepted += nbytes
            if nbytes > 0 and self._oldest_unsynced_at is None:
                self._oldest_unsynced_at = now
            return SnapshotOutcome(
                stall_seconds=stall, backlog_bytes=int(self._backlog)
            )

    def drain_time(self) -> float:
        """Seconds needed to flush the current backlog completely."""
        with self._lock:
            return self._backlog / self.write_bandwidth
