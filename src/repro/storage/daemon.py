"""Host flush daemon model (§4.2.2, §5).

The real system runs 8 background host threads that collect hidden states
snapshotted from the GPU, pack them into chunk buffers, and flush full
chunks to NVMe.  For the performance model, the daemon is a work-conserving
server with a byte backlog: snapshots enqueue bytes at some simulation
time, and the backlog drains at the array's write bandwidth.  Saving stalls
the GPU only if the host-side staging buffer would overflow — which, per
the paper's measurements (§6.3.3), never happens because decode-phase
hidden-state production is far below PCIe and SSD write bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError


@dataclass(frozen=True)
class SnapshotOutcome:
    """Result of offering a snapshot to the daemon.

    Attributes:
        stall_seconds: GPU-visible stall caused by staging-buffer pressure.
        backlog_bytes: Daemon backlog immediately after the snapshot.
    """

    stall_seconds: float
    backlog_bytes: int


class FlushDaemon:
    """Work-conserving background flusher with a bounded staging buffer."""

    def __init__(
        self,
        write_bandwidth: float,
        staging_bytes: int = 4 * 1024**3,
        n_threads: int = 8,
    ) -> None:
        if write_bandwidth <= 0:
            raise ConfigError("daemon write bandwidth must be positive")
        if staging_bytes <= 0:
            raise ConfigError("staging buffer must be positive")
        if n_threads <= 0:
            raise ConfigError("daemon needs at least one thread")
        self.write_bandwidth = float(write_bandwidth)
        self.staging_bytes = int(staging_bytes)
        self.n_threads = n_threads
        self._backlog = 0.0
        self._last_time = 0.0
        self._total_flushed = 0.0
        self._total_stall = 0.0

    @property
    def backlog_bytes(self) -> int:
        return int(self._backlog)

    @property
    def total_flushed_bytes(self) -> int:
        return int(self._total_flushed)

    @property
    def total_stall_seconds(self) -> float:
        return self._total_stall

    def advance(self, now: float) -> None:
        """Drain the backlog up to simulation time ``now``."""
        if now < self._last_time - 1e-12:
            raise SimulationError("daemon time moved backwards")
        elapsed = max(0.0, now - self._last_time)
        drained = min(self._backlog, elapsed * self.write_bandwidth)
        self._backlog -= drained
        self._total_flushed += drained
        self._last_time = max(self._last_time, now)

    def snapshot(self, nbytes: int, now: float) -> SnapshotOutcome:
        """Accept ``nbytes`` of snapshotted states at time ``now``.

        If the staging buffer cannot absorb the snapshot, the GPU stalls for
        exactly the time the daemon needs to free enough space.
        """
        if nbytes < 0:
            raise ConfigError("snapshot size must be non-negative")
        self.advance(now)
        overflow = self._backlog + nbytes - self.staging_bytes
        stall = 0.0
        if overflow > 0:
            stall = overflow / self.write_bandwidth
            self.advance(now + stall)
        self._backlog += nbytes
        self._total_stall += stall
        return SnapshotOutcome(stall_seconds=stall, backlog_bytes=int(self._backlog))

    def drain_time(self) -> float:
        """Seconds needed to flush the current backlog completely."""
        return self._backlog / self.write_bandwidth
