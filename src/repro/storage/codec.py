"""Quantized storage codecs for hidden states (paper §7 extension).

The paper notes that CacheGen-style quantization "can be applied in HCache
to reduce the size of hidden states".  This module implements that
extension: a symmetric per-group integer quantizer that shrinks stored
hidden states 2-4x beyond FP16 at a small, bounded reconstruction error.
Unlike the core method this is *lossy*; the tests bound the logit drift it
introduces, and the ablation bench quantifies the restoration-time win.

Codecs plug into :class:`~repro.storage.manager.StorageManager` consumers
at the call site: encode before ``append``, decode after ``load_layer``
(payload dtypes stay opaque to the manager).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: Supported integer widths and their quantization levels.
_LEVELS = {8: 127.0, 4: 7.0}


@dataclass(frozen=True)
class QuantizedBlock:
    """A quantized hidden-state block.

    Attributes:
        codes: Integer codes, shape ``(n_tokens, width)``, dtype int8.
        scales: Per-group scales, shape ``(n_tokens, n_groups)``.
        bits: Integer width (4 or 8); 4-bit codes still occupy an int8
            array in memory but count 0.5 bytes each for storage sizing.
        group_size: Channels per quantization group.
    """

    codes: np.ndarray
    scales: np.ndarray
    bits: int
    group_size: int

    @property
    def n_tokens(self) -> int:
        return self.codes.shape[0]

    @property
    def storage_bytes(self) -> int:
        """Bytes this block occupies on storage (codes + FP16 scales)."""
        code_bytes = self.codes.size * self.bits // 8
        scale_bytes = self.scales.size * 2
        return code_bytes + scale_bytes


class GroupQuantizer:
    """Symmetric per-group quantizer for activation tensors.

    Channels are split into contiguous groups of ``group_size``; each
    (token, group) pair gets one scale set to its absolute maximum, and
    values are rounded to ``bits``-wide signed integers.  Symmetric
    scaling keeps zero exact — hidden states are zero-mean-ish, and K/V
    projections are linear, so the projection of the reconstruction equals
    the reconstruction of the projection up to the same relative error.
    """

    def __init__(self, bits: int = 8, group_size: int = 64) -> None:
        if bits not in _LEVELS:
            raise ConfigError(f"bits must be one of {sorted(_LEVELS)}, got {bits}")
        if group_size <= 0:
            raise ConfigError("group_size must be positive")
        self.bits = bits
        self.group_size = group_size

    def _grouped(self, states: np.ndarray) -> np.ndarray:
        n, width = states.shape
        if width % self.group_size != 0:
            raise ConfigError(
                f"width {width} not divisible by group size {self.group_size}"
            )
        return states.reshape(n, width // self.group_size, self.group_size)

    def encode(self, states: np.ndarray) -> QuantizedBlock:
        """Quantize ``(n_tokens, width)`` hidden states."""
        states = np.asarray(states, dtype=np.float32)
        if states.ndim != 2:
            raise ConfigError(f"expected a 2-D block, got shape {states.shape}")
        grouped = self._grouped(states)
        levels = _LEVELS[self.bits]
        absmax = np.max(np.abs(grouped), axis=-1)
        scales = np.where(absmax > 0, absmax / levels, 1.0).astype(np.float32)
        codes = np.clip(
            np.round(grouped / scales[..., None]), -levels, levels
        ).astype(np.int8)
        return QuantizedBlock(
            codes=codes.reshape(states.shape),
            scales=scales,
            bits=self.bits,
            group_size=self.group_size,
        )

    def decode(self, block: QuantizedBlock) -> np.ndarray:
        """Reconstruct FP32 hidden states from a quantized block."""
        if block.bits != self.bits or block.group_size != self.group_size:
            raise ConfigError("block was encoded with different codec parameters")
        grouped = block.codes.reshape(
            block.n_tokens, -1, self.group_size
        ).astype(np.float32)
        return (grouped * block.scales[..., None]).reshape(block.codes.shape)

    def compression_ratio(self, width: int) -> float:
        """Stored-byte ratio versus FP16 for a ``width``-channel state."""
        fp16 = width * 2
        quantized = width * self.bits / 8 + (width / self.group_size) * 2
        return fp16 / quantized

    def max_relative_error(self) -> float:
        """Worst-case per-element error relative to the group's absmax."""
        return 0.5 / _LEVELS[self.bits]


def quantization_logit_drift(
    model,
    tokens: np.ndarray,
    quantizer: GroupQuantizer,
) -> float:
    """Measure end-task impact: max |logit delta| after a quantized restore.

    Runs a real prefill, round-trips the hidden states through the codec,
    restores KV from the reconstruction, and decodes one step against both
    caches.  Returns the maximum absolute logit difference — the quantity
    quantization papers bound to argue near-losslessness.
    """
    result, cache = model.prefill(np.asarray(tokens), capture_hidden=True)
    assert result.hidden_states is not None
    lossy = [
        quantizer.decode(quantizer.encode(hidden)) for hidden in result.hidden_states
    ]
    restored = model.restore_cache_from_hidden(lossy)
    probe = int(np.argmax(result.logits[-1]))
    exact_logits = model.decode_step(probe, cache).logits[-1]
    lossy_logits = model.decode_step(probe, restored).logits[-1]
    return float(np.max(np.abs(exact_logits - lossy_logits)))
