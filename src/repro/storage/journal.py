"""Write-ahead manifest journal: crash-safe storage metadata (ROADMAP: fault tolerance).

The chunk payloads themselves already stream to storage devices as they
are produced (§4.2) — what a crash destroys is the *metadata*: the
in-memory context registry, run lengths, tail buffers, and seal state of
:class:`repro.storage.manager.StorageManager`.  Following DéjàVu's
observation that streamed state makes fault tolerance a metadata-and-
replication problem, this module makes that metadata durable with a
classic write-ahead log:

- Every mutation of the manager's durable state appends one **record** to
  an append-only journal file: ``register`` / ``chunk`` / ``seal`` /
  ``tokens`` / ``free``.
- Records are framed as ``<u32 payload_len><u32 crc32><payload>`` with a
  JSON payload.  A torn final write — the normal crash artifact of an
  append-only file — is detected by the length field; every other
  corruption by the checksum.
- :meth:`ManifestJournal.replay` folds snapshot + journal into a
  :class:`ManifestState`.  A torn tail is truncated (the strict prefix of
  committed records survives); a complete-but-corrupt record raises
  :class:`repro.errors.JournalCorruptError`.  Recovery is conservative or
  loud — never silently wrong.
- :meth:`ManifestJournal.compact` atomically installs a snapshot of the
  full state (tmp file + fsync + rename) and switches to a fresh journal
  *generation*: the snapshot names the generation of the log that extends
  it, so a crash anywhere during compaction replays either the old
  snapshot + old log or the new snapshot + new (empty) log — never a
  snapshot with a stale log double-applied on top.

Commit-point ordering is the manager's contract, not this module's: a
chunk is written to its device *first* and journaled *second*, so every
journaled chunk is durably readable, and device chunks with no journal
record are orphans that recovery sweeps.  Token ids are journaled *before*
their state rows are appended, so the durable token log always covers the
durable rows and recovery only ever truncates it.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigError, JournalCorruptError, StateError

_FRAME = struct.Struct("<II")

#: Upper bound on one record's JSON payload.  Far above anything the
#: manager writes; a length field beyond it can only be corruption (a torn
#: append shortens the file, it never fabricates header bytes).
MAX_RECORD_BYTES = 1 << 24


@dataclass
class RunManifest:
    """Durable description of one (layer, kind) token run.

    Attributes:
        full_chunks: Completely filled chunks journaled as device-resident.
        chunk_crcs: CRC32 of each full chunk's payload, by chunk index.
        sealed_tail_tokens: Rows of the sealed partial tail chunk (0 when
            the tail was never sealed, or was superseded by a full chunk).
        sealed_tail_index: Chunk index the sealed tail occupies (-1 none).
        sealed_tail_crc: CRC32 of the sealed tail payload.
    """

    full_chunks: int = 0
    chunk_crcs: dict[int, int] = field(default_factory=dict)
    sealed_tail_tokens: int = 0
    sealed_tail_index: int = -1
    sealed_tail_crc: int = 0


@dataclass
class ContextManifest:
    """Durable description of one stored context."""

    n_layers: int
    hidden_width: int
    dtype: str
    runs: dict[tuple[int, str], RunManifest] = field(default_factory=dict)
    tokens: list[int] = field(default_factory=list)


class ManifestState:
    """The fold of a journal: what the manager durably knew at each point.

    Built by :meth:`ManifestJournal.replay`; also serialized whole as the
    compacted snapshot.  :meth:`apply` is the single place journal records
    acquire meaning, so replaying ``snapshot + log`` and snapshotting the
    live manager produce identical states by construction.
    """

    def __init__(self) -> None:
        self.contexts: dict[str, ContextManifest] = {}

    # -- record semantics ----------------------------------------------

    def _context(self, record: Mapping[str, Any]) -> ContextManifest:
        context_id = record.get("context_id")
        if context_id not in self.contexts:
            raise JournalCorruptError(
                f"journal record {record.get('op')!r} names unknown context {context_id!r}"
            )
        return self.contexts[context_id]

    def apply(self, record: Mapping[str, Any]) -> None:
        """Fold one journal record into the state."""
        try:
            op = record.get("op")
            if op == "register":
                context_id = record["context_id"]
                if context_id in self.contexts:
                    raise JournalCorruptError(
                        f"context {context_id!r} registered twice without a free"
                    )
                self.contexts[context_id] = ContextManifest(
                    n_layers=int(record["n_layers"]),
                    hidden_width=int(record["hidden_width"]),
                    dtype=str(record["dtype"]),
                )
            elif op == "chunk":
                crec = self._context(record)
                run = crec.runs.setdefault(
                    (int(record["layer"]), str(record["kind"])), RunManifest()
                )
                index = int(record["index"])
                if index == run.sealed_tail_index:
                    # The sealed partial filled up and was rewritten as a
                    # full chunk in the same slot; the full chunk wins.
                    run.sealed_tail_tokens = 0
                    run.sealed_tail_index = -1
                    run.sealed_tail_crc = 0
                run.chunk_crcs[index] = int(record["crc"])
                run.full_chunks = max(run.full_chunks, index + 1)
            elif op == "seal":
                crec = self._context(record)
                for tail in record["tails"]:
                    run = crec.runs.setdefault(
                        (int(tail["layer"]), str(tail["kind"])), RunManifest()
                    )
                    run.sealed_tail_index = int(tail["index"])
                    run.sealed_tail_tokens = int(tail["tokens"])
                    run.sealed_tail_crc = int(tail["crc"])
            elif op == "tokens":
                self._context(record).tokens.extend(int(t) for t in record["ids"])
            elif op == "free":
                context_id = record.get("context_id")
                if context_id not in self.contexts:
                    raise JournalCorruptError(f"free of unknown context {context_id!r}")
                del self.contexts[context_id]
            else:
                raise JournalCorruptError(f"unknown journal record op {op!r}")
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalCorruptError(f"malformed journal record {record!r}") from exc

    # -- snapshot serialization ----------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """JSON-able snapshot of the full state."""
        contexts: dict[str, Any] = {}
        for context_id, crec in self.contexts.items():
            runs: dict[str, Any] = {}
            for (layer, kind), run in crec.runs.items():
                runs[f"{layer}:{kind}"] = {
                    "full_chunks": run.full_chunks,
                    "chunk_crcs": {str(i): c for i, c in run.chunk_crcs.items()},
                    "sealed_tail_tokens": run.sealed_tail_tokens,
                    "sealed_tail_index": run.sealed_tail_index,
                    "sealed_tail_crc": run.sealed_tail_crc,
                }
            contexts[context_id] = {
                "n_layers": crec.n_layers,
                "hidden_width": crec.hidden_width,
                "dtype": crec.dtype,
                "tokens": list(crec.tokens),
                "runs": runs,
            }
        return {"contexts": contexts}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ManifestState":
        state = cls()
        try:
            for context_id, crec_p in payload["contexts"].items():
                crec = ContextManifest(
                    n_layers=int(crec_p["n_layers"]),
                    hidden_width=int(crec_p["hidden_width"]),
                    dtype=str(crec_p["dtype"]),
                    tokens=[int(t) for t in crec_p["tokens"]],
                )
                for run_name, run_p in crec_p["runs"].items():
                    layer_s, _, kind = run_name.partition(":")
                    crec.runs[(int(layer_s), kind)] = RunManifest(
                        full_chunks=int(run_p["full_chunks"]),
                        chunk_crcs={
                            int(i): int(c) for i, c in run_p["chunk_crcs"].items()
                        },
                        sealed_tail_tokens=int(run_p["sealed_tail_tokens"]),
                        sealed_tail_index=int(run_p["sealed_tail_index"]),
                        sealed_tail_crc=int(run_p["sealed_tail_crc"]),
                    )
                state.contexts[str(context_id)] = crec
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            raise JournalCorruptError("malformed snapshot payload") from exc
        return state


class ManifestJournal:
    """Append-only manifest log + compacted snapshot over one directory.

    Args:
        directory: Where the log and snapshot files live; created if
            missing.  One directory corresponds to one
            :class:`~repro.storage.manager.StorageManager`'s lifetime.
        fsync_every: Records between ``fsync`` barriers.  1 (the default)
            makes every record durable before ``append`` returns; larger
            values trade a bounded loss window for fewer syncs, the same
            knob :class:`repro.storage.daemon.FlushDaemon` models in time.
    """

    SNAPSHOT_NAME = "manifest.snapshot"

    def __init__(self, directory: str | Path, fsync_every: int = 1) -> None:
        if fsync_every <= 0:
            raise ConfigError("fsync_every must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.directory / self.SNAPSHOT_NAME
        self.fsync_every = int(fsync_every)
        self._pending_sync = 0
        self._closed = False
        self.generation = self._snapshot_generation()
        self._fh = open(self.journal_path, "ab")

    # -- paths and lifecycle -------------------------------------------

    def _journal_path(self, generation: int) -> Path:
        return self.directory / f"manifest.{generation:08d}.journal"

    @property
    def journal_path(self) -> Path:
        """The current generation's log file."""
        return self._journal_path(self.generation)

    def _snapshot_generation(self) -> int:
        """Read the generation the snapshot names (0 when no snapshot)."""
        if not self.snapshot_path.exists():
            return 0
        payload = self._read_snapshot_record()
        try:
            return int(payload["generation"])
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalCorruptError("snapshot names no journal generation") from exc

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush, fsync, and release the log file handle."""
        if self._closed:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "ManifestJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- framing -------------------------------------------------------

    @staticmethod
    def _frame(payload: bytes) -> bytes:
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload

    @staticmethod
    def _parse_frames(
        data: bytes, source: str, tolerate_torn: bool
    ) -> tuple[list[dict[str, Any]], int]:
        """Decode framed records; return ``(records, clean_byte_count)``.

        A short final frame is a torn tail: with ``tolerate_torn`` the
        parse stops there (``clean_byte_count`` marks the cut), otherwise
        it raises.  A *complete* frame that fails its checksum, decodes to
        non-JSON, or claims an absurd length is corruption and always
        raises — truncation can only shorten an append-only file, it
        cannot fabricate those bytes.
        """
        records: list[dict[str, Any]] = []
        pos = 0
        n = len(data)
        while pos < n:
            if n - pos < _FRAME.size:
                if tolerate_torn:
                    break
                raise JournalCorruptError(f"{source}: torn record header at byte {pos}")
            length, crc = _FRAME.unpack_from(data, pos)
            if length > MAX_RECORD_BYTES:
                raise JournalCorruptError(
                    f"{source}: record at byte {pos} claims {length} B payload"
                )
            end = pos + _FRAME.size + length
            if end > n:
                if tolerate_torn:
                    break
                raise JournalCorruptError(f"{source}: torn record payload at byte {pos}")
            payload = data[pos + _FRAME.size : end]
            if zlib.crc32(payload) != crc:
                raise JournalCorruptError(
                    f"{source}: record at byte {pos} fails its checksum"
                )
            try:
                record = json.loads(payload)
            except ValueError as exc:
                raise JournalCorruptError(
                    f"{source}: record at byte {pos} is not valid JSON"
                ) from exc
            if not isinstance(record, dict):
                raise JournalCorruptError(
                    f"{source}: record at byte {pos} is not an object"
                )
            records.append(record)
            pos = end
        return records, pos

    # -- writing -------------------------------------------------------

    def append(self, record: Mapping[str, Any]) -> None:
        """Frame and append one record, fsyncing per ``fsync_every``."""
        if self._closed:
            raise StateError("manifest journal is closed")
        payload = json.dumps(dict(record), separators=(",", ":")).encode("utf-8")
        if len(payload) > MAX_RECORD_BYTES:
            raise ConfigError(f"journal record of {len(payload)} B exceeds the frame limit")
        self._fh.write(self._frame(payload))
        self._fh.flush()
        self._pending_sync += 1
        if self._pending_sync >= self.fsync_every:
            os.fsync(self._fh.fileno())
            self._pending_sync = 0

    def sync(self) -> None:
        """Force an fsync barrier regardless of ``fsync_every``."""
        if self._closed:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._pending_sync = 0

    @property
    def journal_bytes(self) -> int:
        """Size of the current log file (compaction trigger input)."""
        if not self._closed:
            self._fh.flush()
        try:
            return self.journal_path.stat().st_size
        except FileNotFoundError:
            return 0

    # -- replay --------------------------------------------------------

    def _read_snapshot_record(self) -> dict[str, Any]:
        data = self.snapshot_path.read_bytes()
        # Snapshots are installed atomically (tmp + fsync + rename), so a
        # torn snapshot cannot be a crash artifact — any parse failure is
        # real corruption.
        records, _ = self._parse_frames(data, "snapshot", tolerate_torn=False)
        if len(records) != 1:
            raise JournalCorruptError(
                f"snapshot must hold exactly one record, found {len(records)}"
            )
        return records[0]

    def replay(self, truncate_torn: bool = True) -> ManifestState:
        """Fold snapshot + journal into the durable manifest state.

        A torn trailing record is discarded — and, with ``truncate_torn``
        (the default), physically truncated away so later appends extend a
        clean prefix.  Everything before the tear replays; any complete-
        but-corrupt record raises :class:`JournalCorruptError` instead of
        producing wrong metadata.
        """
        state = ManifestState()
        if self.snapshot_path.exists():
            snapshot = self._read_snapshot_record()
            try:
                state = ManifestState.from_payload(snapshot["state"])
            except KeyError as exc:
                raise JournalCorruptError("snapshot carries no state payload") from exc
        if not self._closed:
            self._fh.flush()
        try:
            data = self.journal_path.read_bytes()
        except FileNotFoundError:
            data = b""
        records, clean = self._parse_frames(data, "journal", tolerate_torn=True)
        if truncate_torn and clean < len(data):
            self._truncate_log(clean)
        for record in records:
            state.apply(record)
        return state

    def _truncate_log(self, offset: int) -> None:
        was_open = not self._closed
        if was_open:
            self._fh.close()
        with open(self.journal_path, "r+b") as fh:
            fh.truncate(offset)
            fh.flush()
            os.fsync(fh.fileno())
        if was_open:
            self._fh = open(self.journal_path, "ab")

    # -- compaction ----------------------------------------------------

    def compact(self, state: ManifestState) -> None:
        """Atomically install ``state`` as the snapshot; start a fresh log.

        Sequence: create the next generation's (empty) log, write the
        snapshot naming that generation to a tmp file, fsync, rename over
        the old snapshot, then delete superseded logs.  The rename is the
        commit point — replay before it sees old snapshot + old log,
        replay after it sees new snapshot + empty log; no interleaving
        double-applies records.
        """
        if self._closed:
            raise StateError("manifest journal is closed")
        next_gen = self.generation + 1
        next_log = self._journal_path(next_gen)
        with open(next_log, "wb") as fh:
            fh.flush()
            os.fsync(fh.fileno())
        payload = json.dumps(
            {"generation": next_gen, "state": state.to_payload()},
            separators=(",", ":"),
        ).encode("utf-8")
        tmp = self.snapshot_path.with_name(self.SNAPSHOT_NAME + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(self._frame(payload))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.snapshot_path)
        self._fh.close()
        self.generation = next_gen
        self._fh = open(next_log, "ab")
        self._pending_sync = 0
        for stale in self.directory.glob("manifest.*.journal"):
            if stale != next_log:
                stale.unlink(missing_ok=True)
