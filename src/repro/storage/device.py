"""Simulated storage devices holding real chunk payloads.

Each device is both *functional* (it stores the actual bytes/arrays so the
numeric engine can round-trip hidden states exactly) and *timed* (reads and
writes report the wall-clock cost the performance model assigns them, and
the device accumulates busy time for utilization accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.errors import AllocationError, StateError
from repro.simulator.hardware import DRAMSpec, SSDSpec


@dataclass(frozen=True)
class IOReceipt:
    """Outcome of one device operation.

    Attributes:
        nbytes: Payload size.
        seconds: Modelled duration of the operation.
    """

    nbytes: int
    seconds: float


class StorageDevice:
    """One SSD or DRAM region storing chunk payloads.

    Payloads are immutable snapshots: arrays are copied on write so later
    mutation of the caller's buffer cannot corrupt stored state (the real
    system snapshots hidden states off reused GPU buffers for the same
    reason, §4.2.2).
    """

    def __init__(self, spec: SSDSpec | DRAMSpec, device_id: int) -> None:
        self.spec = spec
        self.device_id = device_id
        self._data: dict[Hashable, np.ndarray] = {}
        self._used_bytes = 0
        self._busy_seconds = 0.0
        self._reads = 0
        self._writes = 0

    @property
    def name(self) -> str:
        return f"{self.spec.name}#{self.device_id}"

    @property
    def capacity_bytes(self) -> int:
        return self.spec.capacity_bytes

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def busy_seconds(self) -> float:
        """Cumulative modelled device busy time."""
        return self._busy_seconds

    @property
    def op_counts(self) -> tuple[int, int]:
        """``(reads, writes)`` issued against this device."""
        return self._reads, self._writes

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def write(self, key: Hashable, payload: np.ndarray) -> IOReceipt:
        """Store ``payload`` under ``key`` and return the timed receipt.

        Raises:
            AllocationError: if the device would exceed its capacity.
            StateError: if ``key`` is already present (chunks are written
                once; appends rewrite under a new key).
        """
        if key in self._data:
            raise StateError(f"{self.name}: key {key!r} already written")
        nbytes = int(payload.nbytes)
        if self._used_bytes + nbytes > self.capacity_bytes:
            raise AllocationError(
                f"{self.name}: write of {nbytes} B exceeds capacity "
                f"({self._used_bytes}/{self.capacity_bytes} B used)"
            )
        self._data[key] = np.array(payload, copy=True)
        self._used_bytes += nbytes
        seconds = self.spec.write_time(nbytes)
        self._busy_seconds += seconds
        self._writes += 1
        return IOReceipt(nbytes, seconds)

    def read(self, key: Hashable) -> tuple[np.ndarray, IOReceipt]:
        """Return a copy of the stored payload plus the timed receipt."""
        if key not in self._data:
            raise StateError(f"{self.name}: key {key!r} not present")
        payload = self._data[key]
        seconds = self.spec.read_time(int(payload.nbytes))
        self._busy_seconds += seconds
        self._reads += 1
        return np.array(payload, copy=True), IOReceipt(int(payload.nbytes), seconds)

    def read_into(self, key: Hashable, out: np.ndarray) -> IOReceipt:
        """Copy the stored payload directly into ``out`` (no intermediate).

        The restoration path preallocates one ``(n_tokens, width)`` layer
        destination and reads every chunk straight into its row slice —
        the functional analogue of a DMA into a pinned staging buffer.
        """
        if key not in self._data:
            raise StateError(f"{self.name}: key {key!r} not present")
        payload = self._data[key]
        if payload.shape != out.shape:
            raise StateError(
                f"{self.name}: destination shape {out.shape} mismatches "
                f"stored chunk {payload.shape}"
            )
        np.copyto(out, payload)
        seconds = self.spec.read_time(int(payload.nbytes))
        self._busy_seconds += seconds
        self._reads += 1
        return IOReceipt(int(payload.nbytes), seconds)

    def delete(self, key: Hashable) -> int:
        """Drop a payload, returning the bytes freed."""
        if key not in self._data:
            raise StateError(f"{self.name}: key {key!r} not present")
        nbytes = int(self._data.pop(key).nbytes)
        self._used_bytes -= nbytes
        return nbytes

    def keys(self) -> tuple[Hashable, ...]:
        return tuple(self._data)
