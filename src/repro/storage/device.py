"""Simulated storage devices holding real chunk payloads.

Each device is both *functional* (it stores the actual bytes/arrays so the
numeric engine can round-trip hidden states exactly) and *timed* (reads and
writes report the wall-clock cost the performance model assigns them, and
the device accumulates busy time for utilization accounting).

Devices can additionally **emulate** their modelled latency as real wall
clock: with a :class:`LatencyEmulator` attached, every operation sleeps the
seconds its receipt reports before returning.  Sleeps release the GIL and
burn no CPU, so a background IO worker "reading" from an emulated device
genuinely overlaps the consumer's projection compute — which is how the
threaded restore executor (:mod:`repro.runtime`) turns the §4.1 pipeline
into measurable wall-clock overlap even on machines whose memcpy-speed
simulated reads would otherwise be nearly free.

Devices are safe to read from multiple threads concurrently: payloads are
immutable snapshots and the accounting counters are lock-guarded.  Writes
may not race reads of the same key (the storage manager's save/restore
lifecycle never does that for a live context).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Hashable

import numpy as np

from repro.errors import AllocationError, ConfigError, StateError
from repro.simulator.hardware import DRAMSpec, SSDSpec
from repro.storage.faults import FaultPolicy


@dataclass(frozen=True)
class IOReceipt:
    """Outcome of one device operation.

    Attributes:
        nbytes: Payload size.
        seconds: Modelled duration of the operation.
    """

    nbytes: int
    seconds: float


class LatencyEmulator:
    """Turns modelled device seconds into real wall-clock delay.

    Python's ``time.sleep`` costs ~100 microseconds of overhead on a busy
    host, while a single simulated chunk read can be modelled at a few
    microseconds — sleeping per operation would overstate IO by an order
    of magnitude.  The emulator therefore accumulates modelled seconds as
    *debt* and sleeps it off in quanta of at least ``min_sleep_s``: totals
    stay faithful to the model (within one quantum) while each actual
    sleep is long enough for the OS timer to honour it.

    One emulator is shared by every device of an array.  With the default
    ``channels=1`` that matches how the restoration timing model charges
    all chunk reads to a single serial IO stream
    (:func:`repro.storage.streaming.pipelined_makespan`): ``charge`` is
    thread-safe, and the sleeps themselves serialize on a dedicated lock,
    so even when several IO workers charge concurrently, emulated IO wall
    clock accumulates like the one serial stream the model costs — a
    bigger pool cannot "parallelize" the emulated device time, only hide
    it under compute.  (The debt bookkeeping lock is separate, so
    charging never blocks behind an in-progress sleep.)

    ``channels=N`` models N *independent ingest links* — the §5 sharded
    restoration picture where every simulated GPU pulls its shard of the
    state through its own PCIe lane, so total read bandwidth aggregates
    across shards.  Debt quanta are slept off round-robin across N sleep
    locks: N threads charging concurrently each sleep a different
    channel's quantum at the same time, so emulated IO wall clock floors
    at ``total_modelled / N`` — exactly the aggregated-bandwidth read
    term the sharded makespan model divides by the shard count.  A single
    thread still pays the full total (it cannot sleep in parallel with
    itself), which keeps unsharded baselines honest.

    Sleeps are self-correcting: the OS overshoots short sleeps by tens of
    microseconds, so the emulator measures each sleep's *actual* duration
    and banks the overshoot as credit against future debt.  Cumulative
    emulated wall clock therefore tracks cumulative modelled seconds
    instead of drifting ~10% high with every quantum.
    """

    def __init__(
        self,
        min_sleep_s: float = 1e-3,
        sleep_fn: Callable[[float], None] = time.sleep,
        channels: int = 1,
    ) -> None:
        if min_sleep_s <= 0:
            raise ConfigError("latency emulation needs a positive sleep quantum")
        if channels < 1:
            raise ConfigError("latency emulation needs at least one channel")
        self.min_sleep_s = min_sleep_s
        self.channels = channels
        self._sleep = sleep_fn
        self._lock = threading.Lock()
        self._sleep_locks = [threading.Lock() for _ in range(channels)]
        self._next_channel = 0  # guarded-by: _lock
        self._debt_s = 0.0  # guarded-by: _lock
        self._slept_s = 0.0  # guarded-by: _lock

    @property
    def pending_s(self) -> float:
        """Modelled seconds charged but not yet slept (below one quantum)."""
        with self._lock:
            return self._debt_s

    @property
    def slept_s(self) -> float:
        """Total modelled seconds already converted into real sleeps."""
        with self._lock:
            return self._slept_s

    def _sleep_off(self, take: float) -> None:
        # Round-robin the quantum onto the next channel's sleep lock:
        # with one channel this serializes every sleep (the single-stream
        # model); with N channels up to N threads sleep concurrently (the
        # N-link aggregated-bandwidth model).
        with self._lock:
            channel = self._next_channel
            self._next_channel = (channel + 1) % len(self._sleep_locks)
        with self._sleep_locks[channel]:
            t0 = time.perf_counter()
            self._sleep(take)
            overshoot = (time.perf_counter() - t0) - take
        with self._lock:
            self._slept_s += take
            if overshoot > 0:
                self._debt_s -= overshoot

    def charge(self, seconds: float) -> None:
        """Add modelled seconds; sleep whenever the debt fills a quantum."""
        if seconds < 0:
            raise ConfigError("modelled seconds must be non-negative")
        with self._lock:
            self._debt_s += seconds
            if self._debt_s < self.min_sleep_s:
                return
            take = self._debt_s
            self._debt_s = 0.0
        self._sleep_off(take)

    def flush(self) -> None:
        """Sleep off any positive remainder (end of a timed region)."""
        with self._lock:
            take = self._debt_s
            if take <= 0:
                return
            self._debt_s = 0.0
        self._sleep_off(take)


class StorageDevice:
    """One SSD or DRAM region storing chunk payloads.

    Payloads are immutable snapshots: arrays are copied on write so later
    mutation of the caller's buffer cannot corrupt stored state (the real
    system snapshots hidden states off reused GPU buffers for the same
    reason, §4.2.2).

    Reads from distinct threads are safe (stored arrays are never mutated
    and the busy/op counters are guarded by a lock); the restore executor
    relies on this to fetch chunks from worker threads.
    """

    def __init__(self, spec: SSDSpec | DRAMSpec, device_id: int) -> None:
        self.spec = spec
        self.device_id = device_id
        #: When set, every operation sleeps its modelled seconds for real.
        self.emulator: LatencyEmulator | None = None
        #: When set, every operation is gated by the scripted fault policy
        #: *before* touching any payload: a faulted write stores nothing, a
        #: faulted read moves nothing, and latency spikes add modelled
        #: seconds to the receipt (see :mod:`repro.storage.faults`).
        self.fault_policy: FaultPolicy | None = None
        self._data: dict[Hashable, np.ndarray] = {}
        self._used_bytes = 0
        self._busy_seconds = 0.0  # guarded-by: _stats_lock
        self._reads = 0  # guarded-by: _stats_lock
        self._writes = 0  # guarded-by: _stats_lock
        self._stats_lock = threading.Lock()

    @property
    def name(self) -> str:
        return f"{self.spec.name}#{self.device_id}"

    @property
    def capacity_bytes(self) -> int:
        return self.spec.capacity_bytes

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def busy_seconds(self) -> float:
        """Cumulative modelled device busy time."""
        with self._stats_lock:
            return self._busy_seconds

    @property
    def op_counts(self) -> tuple[int, int]:
        """``(reads, writes)`` issued against this device."""
        with self._stats_lock:
            return self._reads, self._writes

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def _fault_gate(self, is_read: bool) -> float:
        """Consult the fault policy first; return extra modelled seconds.

        Raises:
            DeviceFault: when the policy scripts this operation to fail.
        """
        if self.fault_policy is None:
            return 0.0
        if is_read:
            return self.fault_policy.on_read(self.name)
        return self.fault_policy.on_write(self.name)

    def _account(self, seconds: float, is_read: bool) -> None:
        with self._stats_lock:
            self._busy_seconds += seconds
            if is_read:
                self._reads += 1
            else:
                self._writes += 1
        if self.emulator is not None:
            self.emulator.charge(seconds)

    def write(self, key: Hashable, payload: np.ndarray) -> IOReceipt:
        """Store ``payload`` under ``key`` and return the timed receipt.

        Raises:
            AllocationError: if the device would exceed its capacity.
            StateError: if ``key`` is already present (chunks are written
                once; appends rewrite under a new key).
            DeviceFault: if an attached fault policy scripts this write to
                fail — before anything is stored.
        """
        extra = self._fault_gate(is_read=False)
        if key in self._data:
            raise StateError(f"{self.name}: key {key!r} already written")
        nbytes = int(payload.nbytes)
        if self._used_bytes + nbytes > self.capacity_bytes:
            raise AllocationError(
                f"{self.name}: write of {nbytes} B exceeds capacity "
                f"({self._used_bytes}/{self.capacity_bytes} B used)"
            )
        self._data[key] = np.array(payload, copy=True)
        self._used_bytes += nbytes
        seconds = self.spec.write_time(nbytes) + extra
        self._account(seconds, is_read=False)
        return IOReceipt(nbytes, seconds)

    def read(self, key: Hashable) -> tuple[np.ndarray, IOReceipt]:
        """Return a copy of the stored payload plus the timed receipt."""
        extra = self._fault_gate(is_read=True)
        if key not in self._data:
            raise StateError(f"{self.name}: key {key!r} not present")
        payload = self._data[key]
        seconds = self.spec.read_time(int(payload.nbytes)) + extra
        self._account(seconds, is_read=True)
        return np.array(payload, copy=True), IOReceipt(int(payload.nbytes), seconds)

    def read_into(self, key: Hashable, out: np.ndarray) -> IOReceipt:
        """Copy the stored payload directly into ``out`` (no intermediate).

        The restoration path preallocates one ``(n_tokens, width)`` layer
        destination and reads every chunk straight into its row slice —
        the functional analogue of a DMA into a pinned staging buffer.
        Safe to call from an IO worker thread: ``out`` must simply not be
        read by the consumer until this returns (the staging-ring slot
        ownership rule).  An injected :class:`~repro.errors.DeviceFault`
        fires before any copy, so ``out`` is untouched and a replication
        layer can retry the same slot against a mirror.
        """
        extra = self._fault_gate(is_read=True)
        if key not in self._data:
            raise StateError(f"{self.name}: key {key!r} not present")
        payload = self._data[key]
        if payload.shape != out.shape:
            raise StateError(
                f"{self.name}: destination shape {out.shape} mismatches "
                f"stored chunk {payload.shape}"
            )
        np.copyto(out, payload)
        seconds = self.spec.read_time(int(payload.nbytes)) + extra
        self._account(seconds, is_read=True)
        return IOReceipt(int(payload.nbytes), seconds)

    def delete(self, key: Hashable) -> int:
        """Drop a payload, returning the bytes freed."""
        if key not in self._data:
            raise StateError(f"{self.name}: key {key!r} not present")
        nbytes = int(self._data.pop(key).nbytes)
        self._used_bytes -= nbytes
        return nbytes

    def keys(self) -> tuple[Hashable, ...]:
        return tuple(self._data)
