"""Chunk-based storage layout for hidden states (§4.2.1).

Hidden states are generated layer-before-token (autoregressively, one layer
at a time) but restored token-before-layer (all tokens of a layer at once).
The paper resolves the mismatch by splitting each layer's token run into
fixed-size chunks of 64 tokens; chunks of one layer are distributed across
the SSDs round-robin so a layer read aggregates the bandwidth of every
device, while growth by appending chunks avoids reserving worst-case space
(LLM output lengths are unpredictable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

#: Tokens per chunk (§4.2.1: "fix-sized (64 tokens) chunks").
CHUNK_TOKENS = 64


@dataclass(frozen=True)
class ChunkKey:
    """Identity of one chunk: a context's layer-local chunk index.

    Attributes:
        context_id: The conversation / document whose states are stored.
        layer: Transformer layer the chunk belongs to.
        index: Position of the chunk within the layer's token run.
        kind: ``"hidden"`` or ``"kv"`` — the scheduler may store some
            layers as KV instead of hidden states (§4.1).
    """

    context_id: str
    layer: int
    index: int
    kind: str = "hidden"

    def __post_init__(self) -> None:
        if self.layer < 0 or self.index < 0:
            raise ConfigError("chunk layer and index must be non-negative")
        if self.kind not in ("hidden", "kv"):
            raise ConfigError(f"unknown chunk kind {self.kind!r}")


@dataclass(frozen=True)
class ChunkLayout:
    """Geometry of the chunks holding one layer's states for a context.

    Attributes:
        tokens_per_chunk: Chunk capacity in tokens.
        bytes_per_token: Per-token state size at this layer (hidden width or
            2x for KV), in bytes.
    """

    tokens_per_chunk: int = CHUNK_TOKENS
    bytes_per_token: int = 0

    def __post_init__(self) -> None:
        if self.tokens_per_chunk <= 0:
            raise ConfigError("tokens_per_chunk must be positive")
        if self.bytes_per_token < 0:
            raise ConfigError("bytes_per_token must be non-negative")

    @property
    def chunk_bytes(self) -> int:
        """Capacity of one chunk in bytes."""
        return self.tokens_per_chunk * self.bytes_per_token

    def chunks_for(self, n_tokens: int) -> int:
        """Number of chunks needed to hold ``n_tokens``."""
        if n_tokens < 0:
            raise ConfigError("token count must be non-negative")
        return math.ceil(n_tokens / self.tokens_per_chunk)

    def used_bytes(self, n_tokens: int) -> int:
        """Bytes of actual state stored for ``n_tokens``."""
        return n_tokens * self.bytes_per_token

    def allocated_bytes(self, n_tokens: int) -> int:
        """Bytes of chunk capacity allocated for ``n_tokens``."""
        return self.chunks_for(n_tokens) * self.chunk_bytes

    def internal_fragmentation(self, n_tokens: int) -> int:
        """Wasted bytes inside the final, partially filled chunk.

        Bounded by one chunk per (layer, context) — the reason the paper
        prefers chunking over reserving a maximum-length contiguous run.
        """
        return self.allocated_bytes(n_tokens) - self.used_bytes(n_tokens)

    def token_slice(self, chunk_index: int, n_tokens: int) -> tuple[int, int]:
        """Token range ``[start, stop)`` stored in chunk ``chunk_index``."""
        start = chunk_index * self.tokens_per_chunk
        if start >= n_tokens:
            raise ConfigError(f"chunk {chunk_index} is beyond {n_tokens} tokens")
        stop = min(start + self.tokens_per_chunk, n_tokens)
        return start, stop
