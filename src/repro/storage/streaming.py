"""Chunk-granular streaming reads for the restoration pipeline (§4.1).

HCache's restoration overlaps hidden-state transmission with the K/V
projection GEMMs: compute starts when the *first* chunks arrive, not when
the whole layer has landed.  This module provides the pieces the numeric
engine needs to actually execute that shape:

- :class:`StagingRing` — a small ring of preallocated staging buffers the
  storage manager reads device chunks into (the functional analogue of
  the pinned host buffers a real pipeline DMAs through).  With the
  default depth of 2 the consumer can hold one granule while the next
  one's read is already in flight (double buffering).
- :class:`LayerChunk` — one streamed granule: a row range of one layer's
  token run, a zero-copy view of its staging slot, and the modelled IO
  seconds its device reads cost.
- :func:`pipelined_makespan` — the two-stream chunk timeline shared by
  the numeric engine's restore breakdown and the tiered/prefetching
  timing models, so the DRAM-warm path and the SSD path are costed by
  identical code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError


class StagingRing:
    """Ring of preallocated ``(granule_tokens, width)`` staging buffers.

    ``acquire`` hands out slots round-robin; a slot's previous content is
    overwritten, so a view yielded from slot *i* stays valid only until
    ``depth - 1`` further acquisitions — exactly the lookahead window a
    double-buffered consumer needs (read granule ``k+1`` while granule
    ``k`` is still being projected), and no more.

    Threading rules (what the threaded restore executor relies on):
    ``acquire`` itself must be called from a single coordinating thread —
    it is plain Python state, not a concurrent queue.  A slot *may* then
    be **filled from another thread** (an IO worker running
    :meth:`repro.storage.manager.StorageManager.read_granule_into`); the
    consumer must not touch the slot until that fill completes, and the
    coordinator must not re-``acquire`` the slot (i.e. advance ``depth``
    acquisitions past it) until the consumer is done with it.  With at
    most ``F`` granules outstanding (filled-or-filling but not yet
    consumed), a ring of ``depth >= F + 1`` makes slot reuse safe.
    """

    def __init__(
        self,
        depth: int,
        granule_tokens: int,
        width: int,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        if depth < 2:
            raise ConfigError("staging ring needs depth >= 2 for double buffering")
        if granule_tokens <= 0 or width <= 0:
            raise ConfigError("staging slots need positive token count and width")
        self.granule_tokens = granule_tokens
        self.width = width
        self._slots = [
            np.empty((granule_tokens, width), dtype=np.dtype(dtype)) for _ in range(depth)
        ]
        self._next = 0

    @property
    def depth(self) -> int:
        return len(self._slots)

    def acquire(self) -> np.ndarray:
        """Return the next slot (its previous content becomes invalid)."""
        slot = self._slots[self._next]
        self._next = (self._next + 1) % len(self._slots)
        return slot


@dataclass(frozen=True)
class GranuleSpec:
    """Location of one granule in a layer's token run — no data attached.

    The storage manager's :meth:`~repro.storage.manager.StorageManager.granule_plan`
    enumerates these without touching any device, which is what lets the
    threaded restore executor submit the corresponding reads to worker
    threads ahead of consumption while keeping the consumption order (and
    therefore the numerics) identical to the single-threaded stream.

    Attributes:
        layer: Model layer the rows belong to.
        kind: ``"hidden"`` or ``"kv"``.
        start: First token row covered (inclusive).
        stop: Last token row covered (exclusive).
    """

    layer: int
    kind: str
    start: int
    stop: int

    @property
    def n_tokens(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class LayerChunk:
    """One streamed granule of a layer's token run.

    Attributes:
        layer: Model layer the rows belong to.
        kind: ``"hidden"`` or ``"kv"``.
        start: First token row covered (inclusive).
        stop: Last token row covered (exclusive).
        data: ``(stop - start, width)`` view of a staging-ring slot.
            Valid until the ring recycles the slot (``depth - 1`` more
            granules); consumers that look further ahead must copy.
        io_seconds: Modelled device time of the granule's chunk reads
            (0 for rows served from the host-buffered tail).
        device_reads: Device chunk reads issued for this granule.
    """

    layer: int
    kind: str
    start: int
    stop: int
    data: np.ndarray
    io_seconds: float
    device_reads: int

    @property
    def n_tokens(self) -> int:
        return self.stop - self.start


def pipelined_makespan(
    io_seconds: Sequence[float] | Iterable[float],
    compute_seconds: Sequence[float] | Iterable[float],
) -> float:
    """Makespan of a chunk pipeline over one IO and one compute stream.

    Chunk ``i``'s transfer chains on the IO stream; its compute starts
    once both its own transfer and chunk ``i-1``'s compute are done —
    the §4.1 restoration shape at chunk granularity.  Both the numeric
    engine's restore breakdown and the tiered-backend timing model cost
    their streams through this one function, and the threaded restore
    executor is its executable form: with device-latency emulation on,
    the executor's measured wall clock should approach this makespan
    (``benchmarks/bench_hotpath.py`` tracks the gap).
    """
    io_list = list(io_seconds)
    compute_list = list(compute_seconds)
    if len(io_list) != len(compute_list):
        raise ConfigError(
            f"pipeline stages must align: {len(io_list)} IO chunks vs "
            f"{len(compute_list)} compute chunks"
        )
    io_done = 0.0
    compute_done = 0.0
    for io_s, compute_s in zip(io_list, compute_list):
        if io_s < 0 or compute_s < 0:
            raise ConfigError("chunk durations must be non-negative")
        io_done += io_s
        compute_done = max(compute_done, io_done) + compute_s
    return compute_done
