"""Deterministic fault injection for storage devices.

A :class:`FaultPolicy` attached to a :class:`~repro.storage.device.
StorageDevice` (via its ``fault_policy`` attribute) is consulted *before*
every read and write: it can raise :class:`repro.errors.DeviceFault` for
scripted operation ordinals, kill the device outright from some point on,
or add deterministic latency spikes to the modelled seconds.  Tests and
the benchmark use it to script failures exactly — "fail the 3rd read",
"primary dead from the start" — so failover and recovery behaviour is
reproducible rather than racy.

The policy counts operations per attached device instance and is
thread-safe: the restore executor's IO workers may hit the same device
concurrently, and the Nth-operation semantics must stay exact under that
interleaving.
"""

from __future__ import annotations

import threading
from typing import Collection

from repro.errors import ConfigError, DeviceFault


class FaultPolicy:
    """Scripted, deterministic device failures.

    Args:
        fail_reads: 1-based read ordinals that raise :class:`DeviceFault`.
        fail_writes: 1-based write ordinals that raise.
        fail_reads_from: Every read from this ordinal on fails (a dead or
            unplugged device, read-side).
        fail_writes_from: Every write from this ordinal on fails.
        read_latency_spike_s: Extra modelled seconds added to every
            ``spike_every``-th read (a stalling-but-working device).
        spike_every: Period of the latency spikes; 0 disables them.

    The ordinals count operations *arriving at the device the policy is
    attached to*, after any replication routing — attaching a policy to a
    :class:`~repro.storage.replicated.ReplicatedDevice`'s primary scripts
    primary failures without touching the mirror.
    """

    def __init__(
        self,
        fail_reads: Collection[int] = (),
        fail_writes: Collection[int] = (),
        fail_reads_from: int | None = None,
        fail_writes_from: int | None = None,
        read_latency_spike_s: float = 0.0,
        spike_every: int = 0,
    ) -> None:
        if any(n < 1 for n in fail_reads) or any(n < 1 for n in fail_writes):
            raise ConfigError("fault ordinals are 1-based")
        if fail_reads_from is not None and fail_reads_from < 1:
            raise ConfigError("fail_reads_from is a 1-based ordinal")
        if fail_writes_from is not None and fail_writes_from < 1:
            raise ConfigError("fail_writes_from is a 1-based ordinal")
        if read_latency_spike_s < 0:
            raise ConfigError("latency spikes must be non-negative")
        if spike_every < 0:
            raise ConfigError("spike_every must be non-negative")
        self.fail_reads = frozenset(int(n) for n in fail_reads)
        self.fail_writes = frozenset(int(n) for n in fail_writes)
        self.fail_reads_from = fail_reads_from
        self.fail_writes_from = fail_writes_from
        self.read_latency_spike_s = float(read_latency_spike_s)
        self.spike_every = int(spike_every)
        self._lock = threading.Lock()
        self._reads_seen = 0  # guarded-by: _lock
        self._writes_seen = 0  # guarded-by: _lock
        self._faults_injected = 0  # guarded-by: _lock

    @classmethod
    def dead(cls) -> "FaultPolicy":
        """A device that fails every operation — total loss of one replica."""
        return cls(fail_reads_from=1, fail_writes_from=1)

    @property
    def faults_injected(self) -> int:
        with self._lock:
            return self._faults_injected

    @property
    def ops_seen(self) -> tuple[int, int]:
        """``(reads, writes)`` the policy has inspected."""
        with self._lock:
            return self._reads_seen, self._writes_seen

    def on_read(self, device_name: str) -> float:
        """Gate one read; return extra modelled seconds or raise."""
        with self._lock:
            self._reads_seen += 1
            n = self._reads_seen
            fail = n in self.fail_reads or (
                self.fail_reads_from is not None and n >= self.fail_reads_from
            )
            if fail:
                self._faults_injected += 1
        if fail:
            raise DeviceFault(f"{device_name}: injected fault on read #{n}")
        if self.spike_every and n % self.spike_every == 0:
            return self.read_latency_spike_s
        return 0.0

    def on_write(self, device_name: str) -> float:
        """Gate one write; return extra modelled seconds or raise."""
        with self._lock:
            self._writes_seen += 1
            n = self._writes_seen
            fail = n in self.fail_writes or (
                self.fail_writes_from is not None and n >= self.fail_writes_from
            )
            if fail:
                self._faults_injected += 1
        if fail:
            raise DeviceFault(f"{device_name}: injected fault on write #{n}")
        return 0.0
