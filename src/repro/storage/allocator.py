"""Chunk slot allocation and accounting.

The allocator owns the mapping from (context, layer, kind) to chunk slots
and enforces the array's capacity.  It exists separately from the manager
so the accounting invariants — no double allocation, frees restore
capacity, internal fragmentation bounded by one chunk per run — can be
tested in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError, StateError
from repro.storage.chunk import ChunkKey, ChunkLayout


@dataclass
class ChunkRun:
    """The chunk slots backing one (context, layer, kind) token run.

    Attributes:
        layout: Geometry of this run's chunks.
        n_tokens: Tokens currently stored in the run.
        n_chunks: Chunk slots allocated (``layout.chunks_for(n_tokens)``).
    """

    layout: ChunkLayout
    n_tokens: int = 0
    n_chunks: int = 0

    @property
    def allocated_bytes(self) -> int:
        return self.n_chunks * self.layout.chunk_bytes

    @property
    def used_bytes(self) -> int:
        return self.layout.used_bytes(self.n_tokens)

    @property
    def internal_fragmentation(self) -> int:
        return self.allocated_bytes - self.used_bytes


@dataclass
class AllocatorStats:
    """Aggregate allocator accounting."""

    allocated_bytes: int = 0
    used_bytes: int = 0
    n_runs: int = 0
    n_chunks: int = 0
    peak_allocated_bytes: int = field(default=0)

    @property
    def internal_fragmentation(self) -> int:
        return self.allocated_bytes - self.used_bytes


class ChunkAllocator:
    """Tracks chunk slots for every stored token run against a byte budget."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise AllocationError("allocator capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._runs: dict[tuple[str, int, str], ChunkRun] = {}
        self._stats = AllocatorStats()

    @property
    def stats(self) -> AllocatorStats:
        return self._stats

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._stats.allocated_bytes

    def run(self, context_id: str, layer: int, kind: str) -> ChunkRun:
        key = (context_id, layer, kind)
        if key not in self._runs:
            raise StateError(f"no run registered for {key}")
        return self._runs[key]

    def has_run(self, context_id: str, layer: int, kind: str) -> bool:
        return (context_id, layer, kind) in self._runs

    def open_run(self, context_id: str, layer: int, kind: str, layout: ChunkLayout) -> ChunkRun:
        """Create an empty token run.

        Raises:
            StateError: if the run already exists (runs grow by
                :meth:`extend`, never by re-opening).
        """
        key = (context_id, layer, kind)
        if key in self._runs:
            raise StateError(f"run {key} already open")
        run = ChunkRun(layout=layout)
        self._runs[key] = run
        self._stats.n_runs += 1
        return run

    def extend(self, context_id: str, layer: int, kind: str, n_tokens: int) -> list[ChunkKey]:
        """Grow a run by ``n_tokens``, allocating chunk slots as needed.

        Returns the keys of any *newly allocated* chunks so the manager can
        direct their placement.

        Raises:
            AllocationError: if capacity would be exceeded; the run is left
                unchanged in that case.
        """
        if n_tokens < 0:
            raise AllocationError("cannot extend by a negative token count")
        run = self.run(context_id, layer, kind)
        new_total = run.n_tokens + n_tokens
        needed_chunks = run.layout.chunks_for(new_total)
        extra_chunks = needed_chunks - run.n_chunks
        extra_bytes = extra_chunks * run.layout.chunk_bytes
        if extra_bytes > self.free_bytes:
            raise AllocationError(
                f"extend of run ({context_id}, L{layer}, {kind}) needs {extra_bytes} B "
                f"but only {self.free_bytes} B are free"
            )
        new_keys = [
            ChunkKey(context_id, layer, run.n_chunks + i, kind) for i in range(extra_chunks)
        ]
        run.n_chunks = needed_chunks
        used_before = run.used_bytes
        run.n_tokens = new_total
        self._stats.allocated_bytes += extra_bytes
        self._stats.used_bytes += run.used_bytes - used_before
        self._stats.n_chunks += extra_chunks
        self._stats.peak_allocated_bytes = max(
            self._stats.peak_allocated_bytes, self._stats.allocated_bytes
        )
        return new_keys

    def has_context_runs(self, context_id: str) -> bool:
        """Whether any run (any layer, any kind) exists for a context."""
        return any(k[0] == context_id for k in self._runs)

    def free_context(self, context_id: str) -> int:
        """Release every run of a context, returning the bytes freed."""
        keys = [k for k in self._runs if k[0] == context_id]
        if not keys:
            raise StateError(f"context {context_id!r} has no runs")
        freed = 0
        for key in keys:
            run = self._runs.pop(key)
            freed += run.allocated_bytes
            self._stats.allocated_bytes -= run.allocated_bytes
            self._stats.used_bytes -= run.used_bytes
            self._stats.n_chunks -= run.n_chunks
            self._stats.n_runs -= 1
        return freed

    def context_ids(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for context_id, _, _ in self._runs:
            seen.setdefault(context_id, None)
        return tuple(seen)
