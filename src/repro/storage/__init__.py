"""Host storage substrate: chunked layout, devices, striped array, manager.

Implements the paper's chunk-based storage format (§4.2.1) functionally —
real payload round-trips — and as a timing model consumed by the
restoration pipeline.
"""

from repro.storage.allocator import AllocatorStats, ChunkAllocator, ChunkRun
from repro.storage.array import LayerReadTiming, StorageArray
from repro.storage.chunk import CHUNK_TOKENS, ChunkKey, ChunkLayout
from repro.storage.codec import GroupQuantizer, QuantizedBlock, quantization_logit_drift
from repro.storage.daemon import FlushDaemon, SnapshotOutcome
from repro.storage.device import IOReceipt, LatencyEmulator, StorageDevice
from repro.storage.faults import FaultPolicy
from repro.storage.journal import (
    ContextManifest,
    ManifestJournal,
    ManifestState,
    RunManifest,
)
from repro.storage.manager import ContextMeta, StorageManager
from repro.storage.replicated import ReplicatedDevice
from repro.storage.streaming import (
    GranuleSpec,
    LayerChunk,
    StagingRing,
    pipelined_makespan,
)
from repro.storage.tiered import TieredBackend, TieredReadTiming, TieredStreamTiming

__all__ = [
    "CHUNK_TOKENS",
    "AllocatorStats",
    "ChunkAllocator",
    "ChunkKey",
    "ChunkLayout",
    "ChunkRun",
    "ContextManifest",
    "ContextMeta",
    "FaultPolicy",
    "FlushDaemon",
    "GranuleSpec",
    "GroupQuantizer",
    "IOReceipt",
    "LatencyEmulator",
    "LayerChunk",
    "LayerReadTiming",
    "ManifestJournal",
    "ManifestState",
    "QuantizedBlock",
    "ReplicatedDevice",
    "RunManifest",
    "SnapshotOutcome",
    "StagingRing",
    "StorageArray",
    "StorageDevice",
    "StorageManager",
    "TieredBackend",
    "TieredReadTiming",
    "TieredStreamTiming",
    "pipelined_makespan",
    "quantization_logit_drift",
]
