"""Exception hierarchy for the HCache reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid model, hardware, or scheduler configuration was supplied."""


class CapacityError(ReproError):
    """A storage or memory capacity limit was exceeded."""


class AllocationError(CapacityError):
    """A chunk or block allocation could not be satisfied."""


class AdmissionError(CapacityError):
    """Serving admission control rejected a request.

    Raised by :meth:`repro.engine.frontend.ServingFrontend.submit` when a
    request can never be admitted (its full context exceeds the KV
    budget) or when the arrival queue is at capacity.  A typed rejection
    the caller can surface as back-pressure — never a crash deep inside
    the iteration loop."""


class SchedulingError(ReproError):
    """The restoration scheduler could not produce a valid partition."""


class StateError(ReproError):
    """An object was used in a way that violates its lifecycle.

    Examples: restoring a session whose states were never saved, finishing a
    request twice, or reading a chunk that was already freed.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class RestorationError(ReproError):
    """A state restoration failed or produced inconsistent results."""


class DeviceFault(ReproError):
    """A storage device operation failed (injected or simulated hardware fault).

    Raised by :class:`repro.storage.faults.FaultPolicy` hooks before the
    operation touches any payload, so a faulted write stores nothing and a
    faulted read returns nothing — the caller (or a replication layer) sees
    a clean failure it can retry against a mirror.
    """


class JournalCorruptError(ReproError):
    """The manifest journal holds a complete but corrupt record.

    A *torn tail* (short final record, the normal crash artifact of an
    append-only file) is not corruption — replay truncates it and recovers
    the strict prefix.  This error means a record in the middle of the
    durable prefix fails its checksum or cannot be decoded: recovery must
    stop loudly rather than rebuild silently wrong metadata.
    """


class RecoveryError(ReproError):
    """Crash recovery found journal metadata and device contents disagreeing.

    Examples: a journaled chunk missing from its device, a sealed tail whose
    payload fails its journaled checksum, or a token log shorter than the
    durably readable rows it must describe.
    """
