"""Exception hierarchy for the HCache reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid model, hardware, or scheduler configuration was supplied."""


class CapacityError(ReproError):
    """A storage or memory capacity limit was exceeded."""


class AllocationError(CapacityError):
    """A chunk or block allocation could not be satisfied."""


class SchedulingError(ReproError):
    """The restoration scheduler could not produce a valid partition."""


class StateError(ReproError):
    """An object was used in a way that violates its lifecycle.

    Examples: restoring a session whose states were never saved, finishing a
    request twice, or reading a chunk that was already freed.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class RestorationError(ReproError):
    """A state restoration failed or produced inconsistent results."""
