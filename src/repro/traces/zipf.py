"""Zipfian context popularity (§6.4, Fig. 15).

The GPU-cache experiment synthesizes context arrival patterns with varying
Zipf skew: with ``alpha = uniform`` every context is equally likely, while
larger ``alpha`` concentrates requests on a few hot contexts, driving the
LRU hit ratio from 15% up to 94%.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class ZipfianSampler:
    """Draws item indices with Zipfian (or uniform) popularity."""

    def __init__(self, n_items: int, alpha: float | None, seed: int = 0) -> None:
        """Create the sampler.

        Args:
            n_items: Number of distinct contexts.
            alpha: Zipf exponent; ``None`` (or 0) means uniform — matching
                the paper's "Uniform" x-axis label.
            seed: RNG seed.
        """
        if n_items <= 0:
            raise ConfigError("n_items must be positive")
        if alpha is not None and alpha < 0:
            raise ConfigError("alpha must be non-negative")
        self.n_items = n_items
        self.alpha = alpha
        self.rng = np.random.default_rng(seed)
        if alpha is None or alpha == 0:
            self._probs = np.full(n_items, 1.0 / n_items)
        else:
            ranks = np.arange(1, n_items + 1, dtype=np.float64)
            weights = ranks**-alpha
            self._probs = weights / weights.sum()

    @property
    def probabilities(self) -> np.ndarray:
        """Per-item probabilities, hottest first."""
        return self._probs.copy()

    def sample(self, n_draws: int) -> np.ndarray:
        """Draw ``n_draws`` item indices."""
        if n_draws <= 0:
            raise ConfigError("n_draws must be positive")
        return self.rng.choice(self.n_items, size=n_draws, p=self._probs)

    def theoretical_top_k_mass(self, k: int) -> float:
        """Probability mass of the ``k`` hottest items."""
        if not 0 <= k <= self.n_items:
            raise ConfigError(f"k must be in [0, {self.n_items}]")
        return float(self._probs[:k].sum())
