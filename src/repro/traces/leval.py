"""Synthetic L-Eval-style long-context trace (§2.3, Table 1).

L-Eval bundles 20 long-context sub-tasks; the paper reports three
representative ones plus the 20-task average.  Requests are bimodal: a
long context (5K-16K tokens) with a short instruction and a short answer.
The generator reproduces Table 1's per-task means so Fig. 4 / Fig. 10 /
Fig. 15 run against the same workload shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class LEvalTask:
    """One sub-task's published statistics (Table 1).

    Attributes:
        name: Sub-task name.
        mean_context: Mean long-context length in tokens.
        mean_input: Mean instruction length.
        mean_output: Mean answer length.
    """

    name: str
    mean_context: float
    mean_input: float
    mean_output: float


#: Table 1 of the paper, verbatim.
LEVAL_TASKS: dict[str, LEvalTask] = {
    "paper-assistant": LEvalTask("paper-assistant", 10603.5, 142.7, 404.8),
    "gsm-100": LEvalTask("gsm-100", 5451.7, 77.4, 4.3),
    "quality": LEvalTask("quality", 7053.9, 92.4, 19.2),
    "mixed": LEvalTask("mixed", 16340.2, 44.7, 50.2),
}


@dataclass(frozen=True)
class LEvalRequest:
    """One long-context request.

    Attributes:
        request_id: Unique id.
        task: Sub-task name.
        context_id: Identity of the shared long context (several requests
            may reference the same document, §6.4).
        context_tokens: Evicted context length to restore.
        input_tokens: Instruction length.
        output_tokens: Answer length.
    """

    request_id: str
    task: str
    context_id: str
    context_tokens: int
    input_tokens: int
    output_tokens: int


class LEvalGenerator:
    """Samples L-Eval-like long-context requests."""

    def __init__(
        self,
        seed: int = 0,
        sigma: float = 0.25,
        max_context: int = 16384,
    ) -> None:
        self.rng = np.random.default_rng(seed)
        self.sigma = sigma
        self.max_context = max_context

    def _sample_len(self, mean: float, low: int = 1, high: int | None = None) -> int:
        mu = math.log(mean) - self.sigma * self.sigma / 2.0
        value = int(round(self.rng.lognormal(mu, self.sigma)))
        cap = high if high is not None else self.max_context
        return int(np.clip(value, low, cap))

    def sample_request(
        self, task_name: str, request_id: str, context_id: str | None = None
    ) -> LEvalRequest:
        """Sample one request from a named sub-task."""
        if task_name not in LEVAL_TASKS:
            raise ConfigError(f"unknown L-Eval task {task_name!r}; see LEVAL_TASKS")
        task = LEVAL_TASKS[task_name]
        context = self._sample_len(task.mean_context, low=256)
        return LEvalRequest(
            request_id=request_id,
            task=task.name,
            context_id=context_id if context_id is not None else f"ctx-{request_id}",
            context_tokens=context,
            input_tokens=self._sample_len(task.mean_input, high=2048),
            output_tokens=self._sample_len(task.mean_output, high=2048),
        )

    def sample_task(self, task_name: str, n_requests: int) -> list[LEvalRequest]:
        if n_requests <= 0:
            raise ConfigError("n_requests must be positive")
        return [
            self.sample_request(task_name, f"{task_name}-{i}") for i in range(n_requests)
        ]

    def sample_mixed(self, n_requests: int) -> list[LEvalRequest]:
        """The paper's "Mixed" workload: requests sampled across tasks.

        Mirrors §6.1.2's 200-request sample whose history spans 4K-16K.
        """
        if n_requests <= 0:
            raise ConfigError("n_requests must be positive")
        names = [n for n in LEVAL_TASKS if n != "mixed"]
        requests = []
        for i in range(n_requests):
            name = names[int(self.rng.integers(len(names)))]
            base = self.sample_request(name, f"mixed-{i}")
            # The 20-task average context is much longer than the three
            # representative tasks; widen the mix accordingly.
            scale = float(self.rng.uniform(1.0, 2.0))
            context = int(np.clip(base.context_tokens * scale, 256, self.max_context))
            requests.append(
                LEvalRequest(
                    request_id=base.request_id,
                    task="mixed",
                    context_id=base.context_id,
                    context_tokens=context,
                    input_tokens=base.input_tokens,
                    output_tokens=base.output_tokens,
                )
            )
        return requests

    def sample_context_pool(self, task_name: str, n_contexts: int) -> list[LEvalRequest]:
        """Distinct reusable contexts for the GPU-cache study (§6.4)."""
        if n_contexts <= 0:
            raise ConfigError("n_contexts must be positive")
        return [
            self.sample_request(task_name, f"{task_name}-doc{i}", context_id=f"doc-{i}")
            for i in range(n_contexts)
        ]


def task_statistics(requests: list[LEvalRequest]) -> dict[str, float]:
    """Mean context/input/output of a sampled set (regenerates Table 1)."""
    if not requests:
        raise ConfigError("empty request list")
    return {
        "context": float(np.mean([r.context_tokens for r in requests])),
        "input": float(np.mean([r.input_tokens for r in requests])),
        "output": float(np.mean([r.output_tokens for r in requests])),
    }
