"""Synthetic ShareGPT4-style multi-round conversation trace (§2.3, Fig. 3).

The paper characterizes ShareGPT4 as: mean per-round input of 66.8 tokens,
mean per-round output of 358.8 tokens, and a history-length CDF (truncated
at 16K) whose median exceeds 2.5K tokens.  This generator samples
conversations from log-normal per-round length distributions and a
geometric round count calibrated to land on those statistics, so the
serving benchmarks see the same shape of work the paper's trace produced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: Published ShareGPT4 statistics the generator targets (Fig. 3a).
MEAN_INPUT_TOKENS = 66.8
MEAN_OUTPUT_TOKENS = 358.8
#: History CDF median target (Fig. 3b: "half of the conversations > 2.5K").
MEDIAN_HISTORY_TOKENS = 2500.0
#: History CDF truncation used by the paper.
MAX_HISTORY_TOKENS = 16384


@dataclass(frozen=True)
class ConversationRound:
    """One round of a conversation.

    Attributes:
        round_index: Zero-based round number within its session.
        history_tokens: Accumulated context from all earlier rounds.
        input_tokens: This round's new prompt length.
        output_tokens: This round's response length.
    """

    round_index: int
    history_tokens: int
    input_tokens: int
    output_tokens: int


@dataclass(frozen=True)
class Conversation:
    """A full multi-round session."""

    session_id: str
    rounds: tuple[ConversationRound, ...]

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def final_context(self) -> int:
        last = self.rounds[-1]
        return last.history_tokens + last.input_tokens + last.output_tokens


def _lognormal(rng: np.random.Generator, mean: float, sigma: float) -> float:
    """Sample a log-normal with the requested arithmetic mean."""
    mu = math.log(mean) - sigma * sigma / 2.0
    return float(rng.lognormal(mu, sigma))


class ShareGPTGenerator:
    """Samples ShareGPT4-like conversations."""

    def __init__(
        self,
        seed: int = 0,
        mean_input: float = MEAN_INPUT_TOKENS,
        mean_output: float = MEAN_OUTPUT_TOKENS,
        mean_rounds: float = 12.0,
        sigma: float = 0.9,
        max_history: int = MAX_HISTORY_TOKENS,
        max_round_tokens: int = 2048,
    ) -> None:
        if mean_input <= 0 or mean_output <= 0 or mean_rounds < 1:
            raise ConfigError("trace means must be positive (mean_rounds >= 1)")
        self.rng = np.random.default_rng(seed)
        self.mean_input = mean_input
        self.mean_output = mean_output
        self.mean_rounds = mean_rounds
        self.sigma = sigma
        self.max_history = max_history
        self.max_round_tokens = max_round_tokens

    def _round_length(self, mean: float) -> int:
        value = _lognormal(self.rng, mean, self.sigma)
        return int(np.clip(round(value), 1, self.max_round_tokens))

    def sample_round(self) -> tuple[int, int]:
        """Sample one round's ``(input_tokens, output_tokens)`` lengths.

        The streaming-arrival workloads (:func:`zipf_session_workload`)
        draw rounds independently — session identity comes from the
        popularity sampler, lengths from the trace distributions here.
        """
        return self._round_length(self.mean_input), self._round_length(self.mean_output)

    def sample_conversation(self, session_id: str) -> Conversation:
        """Sample one conversation (>= 2 rounds so history reuse occurs)."""
        p = 1.0 / self.mean_rounds
        n_rounds = int(np.clip(self.rng.geometric(p), 2, 40))
        rounds: list[ConversationRound] = []
        history = 0
        for index in range(n_rounds):
            inp = self._round_length(self.mean_input)
            out = self._round_length(self.mean_output)
            if history + inp + out > self.max_history:
                break
            rounds.append(
                ConversationRound(
                    round_index=index,
                    history_tokens=history,
                    input_tokens=inp,
                    output_tokens=out,
                )
            )
            history += inp + out
        if not rounds:
            # Degenerate draw (first round alone exceeded the cap): retry.
            return self.sample_conversation(session_id)
        return Conversation(session_id=session_id, rounds=tuple(rounds))

    def sample_many(self, n_sessions: int, prefix: str = "sess") -> list[Conversation]:
        if n_sessions <= 0:
            raise ConfigError("n_sessions must be positive")
        return [self.sample_conversation(f"{prefix}-{i}") for i in range(n_sessions)]


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of a sampled trace (regenerates Fig. 3)."""

    n_sessions: int
    n_rounds: int
    mean_input: float
    mean_output: float
    history_p50: float
    history_p90: float
    history_cdf: tuple[tuple[int, float], ...]

    def describe(self) -> str:
        return (
            f"{self.n_sessions} sessions / {self.n_rounds} rounds | "
            f"input {self.mean_input:.1f} output {self.mean_output:.1f} | "
            f"history p50 {self.history_p50:.0f} p90 {self.history_p90:.0f}"
        )


def trace_statistics(
    conversations: list[Conversation],
    cdf_points: tuple[int, ...] = (0, 1024, 2560, 4096, 8192, 16384),
) -> TraceStatistics:
    """Compute Fig. 3-style statistics for a sampled trace."""
    if not conversations:
        raise ConfigError("empty trace")
    inputs = [r.input_tokens for c in conversations for r in c.rounds]
    outputs = [r.output_tokens for c in conversations for r in c.rounds]
    histories = np.array(
        [r.history_tokens for c in conversations for r in c.rounds if r.round_index > 0]
    )
    if histories.size == 0:
        histories = np.array([0.0])
    cdf = tuple(
        (point, float(np.mean(histories <= point))) for point in cdf_points
    )
    return TraceStatistics(
        n_sessions=len(conversations),
        n_rounds=len(inputs),
        mean_input=float(np.mean(inputs)),
        mean_output=float(np.mean(outputs)),
        history_p50=float(np.percentile(histories, 50)),
        history_p90=float(np.percentile(histories, 90)),
        history_cdf=cdf,
    )
