"""Workload generators matched to the paper's traces.

Synthetic stand-ins for ShareGPT4 (Fig. 3) and L-Eval (Table 1) plus the
arrival processes (§6.1.1 Poisson sessions, §6.4 Zipfian reuse) that drive
the serving benchmarks.
"""

from repro.traces.arrival import (
    ROUND_INTERVAL_SECONDS,
    build_workload,
    conversation_requests,
    poisson_arrival_times,
    zipf_session_workload,
)
from repro.traces.leval import (
    LEVAL_TASKS,
    LEvalGenerator,
    LEvalRequest,
    LEvalTask,
    task_statistics,
)
from repro.traces.sharegpt import (
    Conversation,
    ConversationRound,
    ShareGPTGenerator,
    TraceStatistics,
    trace_statistics,
)
from repro.traces.zipf import ZipfianSampler

__all__ = [
    "LEVAL_TASKS",
    "ROUND_INTERVAL_SECONDS",
    "Conversation",
    "ConversationRound",
    "LEvalGenerator",
    "LEvalRequest",
    "LEvalTask",
    "ShareGPTGenerator",
    "TraceStatistics",
    "ZipfianSampler",
    "build_workload",
    "conversation_requests",
    "poisson_arrival_times",
    "task_statistics",
    "trace_statistics",
    "zipf_session_workload",
]
