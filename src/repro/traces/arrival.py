"""Arrival processes: Poisson session starts and fixed round intervals.

The paper's multi-round experiments start sessions with Poisson arrivals
and space rounds within a session 30 seconds apart (§6.1.1).  This module
turns sampled conversations into the flat, time-ordered request list the
serving simulator consumes, wiring round dependencies so round *k+1* never
starts before round *k* finishes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.engine.api import ServingRequest
from repro.engine.request import RequestSpec
from repro.errors import ConfigError
from repro.traces.sharegpt import Conversation, ShareGPTGenerator
from repro.traces.zipf import ZipfianSampler

#: §6.1.1: "The interval between conversation rounds in one session is 30s."
ROUND_INTERVAL_SECONDS = 30.0


def poisson_arrival_times(
    rate_per_second: float, n_arrivals: int, seed: int = 0
) -> np.ndarray:
    """Arrival instants of a homogeneous Poisson process."""
    if rate_per_second <= 0:
        raise ConfigError("arrival rate must be positive")
    if n_arrivals <= 0:
        raise ConfigError("n_arrivals must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_second, size=n_arrivals)
    return np.cumsum(gaps)


def conversation_requests(
    conversation: Conversation,
    session_start: float,
    round_interval: float = ROUND_INTERVAL_SECONDS,
) -> list[RequestSpec]:
    """Expand one conversation into dependent round requests.

    Round ``k`` arrives ``k * round_interval`` after the session start and
    depends on round ``k-1``; the engine additionally refuses to start it
    before the dependency finishes, so slow service cannot reorder rounds.
    """
    if round_interval < 0:
        raise ConfigError("round interval must be non-negative")
    specs: list[RequestSpec] = []
    previous_id: str | None = None
    for r in conversation.rounds:
        request_id = f"{conversation.session_id}/r{r.round_index}"
        specs.append(
            RequestSpec(
                request_id=request_id,
                session_id=conversation.session_id,
                arrival_time=session_start + r.round_index * round_interval,
                history_tokens=r.history_tokens,
                input_tokens=r.input_tokens,
                output_tokens=r.output_tokens,
                depends_on=previous_id,
            )
        )
        previous_id = request_id
    return specs


def build_workload(
    conversations: list[Conversation],
    rate_per_second: float,
    seed: int = 0,
    round_interval: float = ROUND_INTERVAL_SECONDS,
) -> list[RequestSpec]:
    """Poisson-start every conversation and flatten to a sorted request list."""
    if not conversations:
        raise ConfigError("no conversations supplied")
    starts = poisson_arrival_times(rate_per_second, len(conversations), seed)
    specs: list[RequestSpec] = []
    for conversation, start in zip(conversations, starts):
        specs.extend(conversation_requests(conversation, float(start), round_interval))
    return sorted(specs, key=lambda s: s.arrival_time)


def zipf_session_workload(
    n_sessions: int,
    n_requests: int,
    rate_per_second: float,
    *,
    alpha: float | None = 1.0,
    seed: int = 0,
    generator: ShareGPTGenerator | None = None,
    vocab_size: int = 32000,
    slo_ttft_s: float | None = None,
) -> Iterator[ServingRequest]:
    """Streaming arrivals over a large Zipf-popular session population.

    The front-end load experiments (§6.4 popularity, §6.1.1 arrivals)
    draw each request's *session* from a Zipfian popularity law over
    ``n_sessions`` distinct sessions (10^5–10^6 in the paper's sweep) and
    its *lengths* from the ShareGPT round distributions, with Poisson
    arrival instants at the offered ``rate_per_second``.  Requests are
    yielded in arrival order as typed :class:`ServingRequest` objects —
    lazily, so million-session sweeps never materialize the whole trace.

    Repeated draws of one session become consecutive rounds of that
    session: :meth:`ServingFrontend.submit` chains them in order and
    restores the evicted history in between.
    """
    if n_requests <= 0:
        raise ConfigError("n_requests must be positive")
    if vocab_size <= 0:
        raise ConfigError("vocab_size must be positive")
    sampler = ZipfianSampler(n_sessions, alpha, seed=seed)
    arrivals = poisson_arrival_times(rate_per_second, n_requests, seed=seed + 1)
    sessions = sampler.sample(n_requests)
    lengths = generator if generator is not None else ShareGPTGenerator(seed=seed + 2)
    token_rng = np.random.default_rng(seed + 3)
    for arrival, session_index in zip(arrivals, sessions):
        input_tokens, output_tokens = lengths.sample_round()
        yield ServingRequest(
            session_id=f"zipf-{int(session_index)}",
            prompt_tokens=token_rng.integers(0, vocab_size, size=input_tokens),
            max_new_tokens=output_tokens,
            arrival_time=float(arrival),
            slo_ttft_s=slo_ttft_s,
        )
