"""HCache as a :class:`RestorationMethod` (the paper's full system).

Wraps the offline profiler, the bubble-free scheduler, and the pipelined
restoration timing into the common interface the serving engine and the
benchmarks consume, so HCache lines up column-for-column against the
baselines.
"""

from __future__ import annotations

from repro.baselines.base import RestorationMethod
from repro.core.partition import PartitionScheme
from repro.core.profiler import profile_platform
from repro.core.restoration import RestorationTiming, scheme_timing
from repro.core.scheduler import BubbleFreeScheduler, ScheduleDecision
from repro.models.config import ModelConfig
from repro.simulator.hardware import Platform


class HCacheMethod(RestorationMethod):
    """Hidden-state restoration with the bubble-free scheduler."""

    name = "hcache"

    def __init__(
        self,
        config: ModelConfig,
        platform: Platform,
        scheme: PartitionScheme | None = None,
        bubble_free: bool = True,
    ) -> None:
        """Create the method.

        Args:
            config: Serving model.
            platform: Hardware platform.
            scheme: Optional fixed partition (used by ablations); when
                omitted the scheduler decides per history length.
            bubble_free: When False, forces the pure-HCache scheme —
                the "HCache-O" ablation variant of §6.3.1.
        """
        super().__init__(config, platform)
        self._fixed_scheme = scheme
        self._bubble_free = bubble_free
        self._scheduler = BubbleFreeScheduler(config.n_layers)
        self._decisions: dict[int, ScheduleDecision] = {}

    def scheme_for(self, n_tokens: int) -> PartitionScheme:
        """Partition used for a history of ``n_tokens``."""
        if self._fixed_scheme is not None:
            return self._fixed_scheme
        if not self._bubble_free:
            return PartitionScheme.pure_hcache(self.config.n_layers)
        return self.decision_for(n_tokens).scheme

    def decision_for(self, n_tokens: int) -> ScheduleDecision:
        """Scheduler decision (cached per history length)."""
        if n_tokens not in self._decisions:
            profile = profile_platform(self.config, self.platform, n_tokens)
            self._decisions[n_tokens] = self._scheduler.schedule(profile)
        return self._decisions[n_tokens]

    def restoration_timing(self, n_tokens: int) -> RestorationTiming:
        scheme = self.scheme_for(n_tokens)
        return scheme_timing(self.config, self.platform, n_tokens, scheme)

    def storage_bytes_per_token(self, n_tokens: int = 1024) -> int:
        """Per-token storage of the scheme chosen at the reference length."""
        return self.scheme_for(n_tokens).storage_bytes_per_token(self.config)


class HCacheOnlyMethod(HCacheMethod):
    """HCache without the bubble-free scheduler (ablation §6.3.1)."""

    name = "hcache-o"

    def __init__(self, config: ModelConfig, platform: Platform) -> None:
        super().__init__(config, platform, bubble_free=False)
