"""Restoration methods: HCache plus every comparator the paper evaluates.

- :class:`RecomputationMethod` — DeepSpeed-MII-style token recomputation.
- :class:`KVOffloadMethod` — AttentionStore-style KV cache offloading.
- :class:`NaiveHybridMethod` — balanced concurrent recompute + offload
  over token shards (§6.3.1's "Naive Hybrid").
- :class:`HCacheMethod` / :class:`HCacheOnlyMethod` — the paper's system,
  with and without the bubble-free scheduler.
- :class:`IdealMethod` — the no-restoration lower bound.
"""

from repro.baselines.base import RestorationMethod
from repro.baselines.hcache_method import HCacheMethod, HCacheOnlyMethod
from repro.baselines.ideal import IdealMethod
from repro.baselines.kv_offload import KVOffloadMethod
from repro.baselines.naive_hybrid import HybridSplit, NaiveHybridMethod
from repro.baselines.recomputation import RecomputationMethod

__all__ = [
    "HCacheMethod",
    "HCacheOnlyMethod",
    "HybridSplit",
    "IdealMethod",
    "KVOffloadMethod",
    "NaiveHybridMethod",
    "RecomputationMethod",
    "RestorationMethod",
    "default_methods",
]


def default_methods(config, platform) -> dict[str, RestorationMethod]:
    """The standard comparison set used across benchmarks."""
    return {
        "recompute": RecomputationMethod(config, platform),
        "kv-offload": KVOffloadMethod(config, platform),
        "hcache": HCacheMethod(config, platform),
        "ideal": IdealMethod(config, platform),
    }
