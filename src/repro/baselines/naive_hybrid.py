"""Naive hybrid baseline (§3 "our initial attempt", ablated in §6.3.1).

Splits the history *tokens* into two shards restored concurrently: one via
token recomputation (compute) and one via KV offload (IO).  Unlike HCache
it keeps the forward pass and the KV cache as-is, so neither the compute
nor the IO volume shrinks — it merely parallelizes the two baselines.  The
optimizer below balances the shard sizes so both finish together, which is
the strongest version of this idea (bubble-free but without hidden states).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import RestorationMethod
from repro.core.profiler import build_storage_array
from repro.core.restoration import RestorationTiming
from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.simulator.costs import prefill_time
from repro.simulator.hardware import Platform
from repro.storage.chunk import CHUNK_TOKENS


@dataclass(frozen=True)
class HybridSplit:
    """The chosen token split.

    Attributes:
        recompute_tokens: History tokens rebuilt by prefill.
        offload_tokens: History tokens fetched as KV cache.
    """

    recompute_tokens: int
    offload_tokens: int


class NaiveHybridMethod(RestorationMethod):
    """Balanced concurrent recompute + KV offload over token shards."""

    name = "naive-hybrid"

    def __init__(self, config: ModelConfig, platform: Platform, search_step: int = 16) -> None:
        super().__init__(config, platform)
        if search_step <= 0:
            raise ConfigError("search_step must be positive")
        self.search_step = search_step
        self._array = build_storage_array(platform)

    def _offload_io(self, n_tokens: int) -> float:
        if n_tokens == 0:
            return 0.0
        chunk_bytes = CHUNK_TOKENS * self.config.kv_bytes_per_token_layer
        layer_bytes = n_tokens * self.config.kv_bytes_per_token_layer
        return self._array.read_time(layer_bytes, chunk_bytes) * self.config.n_layers

    def best_split(self, n_tokens: int) -> HybridSplit:
        """Balance the shards so compute and IO finish together."""
        if n_tokens <= 0:
            raise ConfigError("n_tokens must be positive")
        best: tuple[float, HybridSplit] | None = None
        step = min(self.search_step, n_tokens)
        candidates = set(range(0, n_tokens + 1, step)) | {n_tokens}
        for n_rec in sorted(candidates):
            split = HybridSplit(n_rec, n_tokens - n_rec)
            makespan = max(
                prefill_time(self.config, self.platform, split.recompute_tokens),
                self._offload_io(split.offload_tokens),
            )
            if best is None or makespan < best[0] - 1e-12:
                best = (makespan, split)
        assert best is not None
        return best[1]

    def restoration_timing(self, n_tokens: int) -> RestorationTiming:
        split = self.best_split(n_tokens)
        compute = prefill_time(self.config, self.platform, split.recompute_tokens)
        io = self._offload_io(split.offload_tokens)
        makespan = max(compute, io)
        return RestorationTiming(
            n_tokens=n_tokens,
            makespan=makespan,
            io_busy=io,
            compute_busy=compute,
            io_bubble=makespan - io,
            compute_bubble=makespan - compute,
        )

    def storage_bytes_per_token(self) -> int:
        """The offloaded shard stores full KV; the recomputed shard nothing.

        Reported for the *average* token assuming the balanced split at a
        1K-token reference history.
        """
        split = self.best_split(1024)
        frac = split.offload_tokens / 1024
        return int(self.config.kv_bytes_per_token * frac)
