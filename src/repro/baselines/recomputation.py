"""Token recomputation baseline (DeepSpeed-MII / vLLM behaviour).

Restores evicted state by re-running the prefill over the original history
tokens.  Pure compute with quadratic attention cost — fast for short
histories, collapsing for long ones (Fig. 11g-i) — and zero storage,
since only the token ids are retained.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import RestorationMethod
from repro.core.restoration import RestorationTiming
from repro.models.kv_cache import KVCache
from repro.models.transformer import Transformer
from repro.simulator.costs import prefill_time


class RecomputationMethod(RestorationMethod):
    """Full prefill over history tokens."""

    name = "recompute"

    def restoration_timing(self, n_tokens: int) -> RestorationTiming:
        compute = prefill_time(self.config, self.platform, n_tokens)
        return RestorationTiming(
            n_tokens=n_tokens,
            makespan=compute,
            io_busy=0.0,
            compute_busy=compute,
            io_bubble=0.0,
            compute_bubble=0.0,
        )

    def ttft(self, n_history: int, n_new: int) -> float:
        """Recomputation folds history and the new prompt into one prefill
        — cheaper than two passes thanks to batched attention."""
        return prefill_time(self.config, self.platform, n_history + n_new)

    @staticmethod
    def restore_numeric(transformer: Transformer, tokens: np.ndarray) -> KVCache:
        """Functional restoration: replay the prefill."""
        _, cache = transformer.prefill(np.asarray(tokens))
        return cache
