"""KV offload baseline (AttentionStore behaviour).

Saves the full KV cache to host storage and streams it back on reuse.
Pure IO: the transmission moves twice the bytes HCache does (K and V
versus one hidden vector per token-layer) and leaves the GPU idle.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import RestorationMethod
from repro.core.profiler import build_storage_array
from repro.core.restoration import RestorationTiming
from repro.models.config import ModelConfig
from repro.models.kv_cache import KVCache
from repro.simulator.hardware import Platform
from repro.storage.chunk import CHUNK_TOKENS
from repro.storage.manager import StorageManager


class KVOffloadMethod(RestorationMethod):
    """Fetch the offloaded KV cache layer by layer from the array."""

    name = "kv-offload"

    def __init__(self, config: ModelConfig, platform: Platform) -> None:
        super().__init__(config, platform)
        self._array = build_storage_array(platform)

    def restoration_timing(self, n_tokens: int) -> RestorationTiming:
        chunk_bytes = CHUNK_TOKENS * self.config.kv_bytes_per_token_layer
        layer_bytes = n_tokens * self.config.kv_bytes_per_token_layer
        per_layer = self._array.read_time(layer_bytes, chunk_bytes)
        io = per_layer * self.config.n_layers
        return RestorationTiming(
            n_tokens=n_tokens,
            makespan=io,
            io_busy=io,
            compute_busy=0.0,
            io_bubble=0.0,
            compute_bubble=0.0,
        )

    def storage_bytes_per_token(self) -> int:
        return self.config.kv_bytes_per_token

    # -- functional path ------------------------------------------------

    @staticmethod
    def save_numeric(manager: StorageManager, context_id: str, kv_cache: KVCache) -> None:
        """Offload every layer's packed KV rows to host storage."""
        config = kv_cache.config
        if not manager.has_context(context_id):
            manager.register_context(
                context_id,
                n_layers=config.n_layers,
                hidden_width=config.hidden_size,
                dtype=np.float32,
            )
        for layer in range(config.n_layers):
            manager.append(context_id, layer, kv_cache.packed_layer(layer), kind="kv")
        manager.seal_context(context_id)

    @staticmethod
    def restore_numeric(
        manager: StorageManager, context_id: str, config: ModelConfig
    ) -> KVCache:
        """Fetch every layer's packed KV rows back into a cache."""
        cache = KVCache(config)
        cache.reserve(manager.tokens_stored(context_id, 0, kind="kv"))
        for layer in range(config.n_layers):
            cache.install_packed(layer, manager.load_layer(context_id, layer, kind="kv"))
        return cache
