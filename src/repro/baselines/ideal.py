"""Ideal (no-restoration) lower bound.

Models the paper's "Ideal" system: placeholder KV values already sit in
GPU memory, so serving pays only the new prompt's prefill.  This bounds
TTFT/TBT from below for every real method (§6, Baselines).
"""

from __future__ import annotations

from repro.baselines.base import RestorationMethod
from repro.core.restoration import RestorationTiming


class IdealMethod(RestorationMethod):
    """Zero-cost restoration."""

    name = "ideal"

    def restoration_timing(self, n_tokens: int) -> RestorationTiming:
        return RestorationTiming(
            n_tokens=n_tokens,
            makespan=0.0,
            io_busy=0.0,
            compute_busy=0.0,
            io_bubble=0.0,
            compute_bubble=0.0,
        )
