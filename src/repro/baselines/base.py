"""The restoration-method interface shared by HCache and every baseline.

A restoration method answers three questions for a given model/platform:
how long restoring ``n`` history tokens takes (split into IO and compute so
the serving engine can overlap them), what it costs in host storage, and —
for batch-size-1 case studies — the resulting TTFT once the new prompt's
prefill is added (the paper's Fig. 4 / Fig. 10 setting).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.restoration import RestorationTiming
from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.simulator.costs import prefill_time
from repro.simulator.hardware import Platform


class RestorationMethod(ABC):
    """Abstract state-restoration strategy."""

    #: Short name used in benchmark tables.
    name: str = "abstract"

    def __init__(self, config: ModelConfig, platform: Platform) -> None:
        self.config = config
        self.platform = platform

    @abstractmethod
    def restoration_timing(self, n_tokens: int) -> RestorationTiming:
        """Timing of restoring ``n_tokens`` of evicted history."""

    def storage_bytes_per_token(self) -> int:
        """Host-storage bytes consumed per context token."""
        return 0

    def io_seconds(self, n_tokens: int) -> float:
        """IO-stream work of a restoration (overlappable with decode)."""
        return self.restoration_timing(n_tokens).io_busy

    def compute_seconds(self, n_tokens: int) -> float:
        """Compute-stream work of a restoration (contends with decode)."""
        return self.restoration_timing(n_tokens).compute_busy

    def ttft(self, n_history: int, n_new: int) -> float:
        """Batch-1 TTFT: restoration makespan plus the new prompt's prefill.

        The paper defines TTFT as the duration of the restoration and
        prefill phases (§6, Metrics).
        """
        if n_new < 0 or n_history < 0:
            raise ConfigError("token counts must be non-negative")
        restore = self.restoration_timing(n_history).makespan if n_history else 0.0
        overhead = self.platform.request_overhead
        return overhead + restore + prefill_time(self.config, self.platform, n_new)

    def restoration_speed(self, n_tokens: int) -> float:
        """Restored tokens per second (Fig. 11's recovery speed)."""
        return self.restoration_timing(n_tokens).restoration_speed

    def describe(self) -> str:
        return f"{self.name} ({self.config.name} on {self.platform.gpu.name})"
