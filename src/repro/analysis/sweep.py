"""Parameter sweep helpers shared by benchmarks and examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import ConfigError


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a sweep.

    Attributes:
        params: The swept parameter values.
        value: The measurement at this point.
    """

    params: dict[str, Any]
    value: Any


def sweep(
    fn: Callable[..., Any],
    axis_name: str,
    axis_values: Iterable[Any],
    **fixed: Any,
) -> list[SweepPoint]:
    """Evaluate ``fn`` along one parameter axis.

    ``fn`` is called as ``fn(**fixed, axis_name=value)`` for every value.
    """
    points = []
    for value in axis_values:
        kwargs = dict(fixed)
        kwargs[axis_name] = value
        points.append(SweepPoint(params={axis_name: value, **fixed}, value=fn(**kwargs)))
    if not points:
        raise ConfigError("sweep axis produced no points")
    return points


def crossover(points: list[SweepPoint], key_a: str, key_b: str) -> Any | None:
    """Find the first axis value where series ``a`` stops beating ``b``.

    Each point's value must be a mapping containing both keys (smaller is
    better).  Returns ``None`` when no crossover occurs.
    """
    if not points:
        raise ConfigError("no sweep points supplied")
    axis = list(points[0].params)[0]
    for point in points:
        if point.value[key_a] >= point.value[key_b]:
            return point.params[axis]
    return None
