"""Benchmark harness utilities: tables, expectations, parameter sweeps."""

from repro.analysis.reporting import (
    PaperExpectation,
    ResultTable,
    render_expectations,
)
from repro.analysis.sweep import SweepPoint, crossover, sweep

__all__ = [
    "PaperExpectation",
    "ResultTable",
    "SweepPoint",
    "crossover",
    "render_expectations",
    "sweep",
]
