"""Benchmark output formatting.

Every benchmark regenerates one of the paper's tables or figure series;
these helpers render them as aligned text tables so the harness output can
be compared line by line against the paper (EXPERIMENTS.md records the
correspondence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class ResultTable:
    """An aligned text table.

    Attributes:
        title: Heading printed above the table.
        headers: Column names.
        rows: Row values; rendered with ``str``.
    """

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ConfigError(
                f"row has {len(values)} cells; table {self.title!r} "
                f"has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        cells = [self.headers] + [[_fmt(v) for v in row] for row in self.rows]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.headers))]
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass(frozen=True)
class PaperExpectation:
    """A paper-reported quantity and the measured reproduction value.

    Attributes:
        name: What is being compared (e.g. "TTFT speedup vs KV offload").
        paper: The paper's value or range, as display text.
        measured: The reproduction's value.
        holds: Whether the qualitative claim is reproduced.
    """

    name: str
    paper: str
    measured: str
    holds: bool

    def render(self) -> str:
        mark = "OK " if self.holds else "DIFF"
        return f"[{mark}] {self.name}: paper {self.paper} | measured {self.measured}"


def render_expectations(expectations: list[PaperExpectation]) -> str:
    return "\n".join(e.render() for e in expectations)
