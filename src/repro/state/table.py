"""Per-session block tables: the indirection from token index to block.

A :class:`BlockTable` is nothing but an ordered list of pool block ids
plus the number of tokens resident in them.  Token ``t`` of the session
lives at row ``t % block_tokens`` of block ``blocks[t // block_tokens]``.
All sharing semantics (refcounts, copy-on-write, commit keys) live in
:class:`repro.state.BlockStateStore`; the table is deliberately dumb so
the property harness can mirror it with a plain list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StateError


@dataclass
class BlockTable:
    """Ordered block ids backing one session's resident prefix."""

    block_tokens: int
    blocks: list[int] = field(default_factory=list)
    n_tokens: int = 0
    #: Token ids resident in the table, used to extend the chain of
    #: prefix keys as blocks fill (and by recovery to re-derive them).
    token_ids: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.block_tokens <= 0:
            raise StateError("block_tokens must be positive")

    @property
    def tail_fill(self) -> int:
        """Rows occupied in the last block (0 means block-aligned)."""
        return self.n_tokens % self.block_tokens

    @property
    def n_full_blocks(self) -> int:
        return self.n_tokens // self.block_tokens

    def locate(self, token_index: int) -> tuple[int, int]:
        """(block id, row within block) holding ``token_index``."""
        if not 0 <= token_index < self.n_tokens:
            raise StateError(
                f"token {token_index} outside resident range [0, {self.n_tokens})"
            )
        return (
            self.blocks[token_index // self.block_tokens],
            token_index % self.block_tokens,
        )

    def block_span(self, index: int) -> tuple[int, int]:
        """Resident token range ``[start, stop)`` covered by block ``index``."""
        if not 0 <= index < len(self.blocks):
            raise StateError(f"block index {index} out of range")
        start = index * self.block_tokens
        return start, min(start + self.block_tokens, self.n_tokens)
