"""Hash-chained content keys for block-aligned token prefixes.

The block store names every *full* block of a session by the chain hash
of all tokens from the start of the sequence up to and including that
block (the LMCache ``_hash``/``CacheEngineKey`` scheme): block ``i``'s
key is ``H(key(i-1) || tokens[i*B:(i+1)*B])``.  Two sessions that share
a token prefix therefore derive byte-identical keys for the shared
blocks — and *only* for them, since any earlier divergence poisons every
later key in the chain.  That property is what makes prefix-cache lookup
a plain dict probe: walk a new session's keys left to right and stop at
the first miss.

Keys are content addresses of the *token* prefix, not of the stored
state bytes; committing a block under its key additionally verifies the
payload against any block already published under the same key (see
:meth:`repro.state.BlockStateStore`), so a chain collision between
numerically different states can never alias silently.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from repro.errors import ConfigError

#: The empty-prefix ancestor every chain starts from.
GENESIS_KEY = ""


def chain_key(prefix_key: str, tokens: np.ndarray | Sequence[int]) -> str:
    """Extend ``prefix_key`` by one block of token ids.

    The digest covers the previous key's ASCII form plus the block's ids
    as little-endian int64 bytes, so the key is invariant to the caller's
    integer dtype but sensitive to every id and to their order.
    """
    ids = np.ascontiguousarray(np.asarray(tokens, dtype=np.int64))
    if ids.ndim != 1 or ids.size == 0:
        raise ConfigError("a chain link needs a non-empty 1-D token block")
    return hashlib.sha256(prefix_key.encode("ascii") + ids.tobytes()).hexdigest()


def prefix_block_keys(
    tokens: np.ndarray | Sequence[int], block_tokens: int
) -> list[str]:
    """Chain keys for every *full* ``block_tokens``-sized block of ``tokens``.

    ``keys[i]`` names the prefix ``tokens[: (i + 1) * block_tokens]``.  A
    trailing partial block has no key — partial blocks are private by
    construction and only become shareable once they fill.
    """
    if block_tokens <= 0:
        raise ConfigError("block_tokens must be positive")
    ids = np.asarray(tokens, dtype=np.int64)
    if ids.ndim != 1:
        raise ConfigError("token sequence must be 1-D")
    keys: list[str] = []
    key = GENESIS_KEY
    for start in range(0, ids.size - block_tokens + 1, block_tokens):
        key = chain_key(key, ids[start : start + block_tokens])
        keys.append(key)
    return keys
