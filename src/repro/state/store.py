"""The block-paged state store: prefix sharing, CoW, and dedup on commit.

:class:`BlockStateStore` sits between the serving engine and a
:class:`~repro.state.BlockPool`.  Each session owns a
:class:`~repro.state.BlockTable`; state rows (per-layer hidden states
and/or packed KV, the same representations the storage tier persists)
enter through :meth:`append` and land in fixed-size pool blocks.

Sharing model:

- **Commit + dedup.**  When a block fills, its hash-chained prefix key
  (:mod:`repro.state.keys`) is derived and the pool's content index is
  probed.  On a hit the payloads are compared bit-for-bit before the
  table swaps its private block for the published one — a chain
  collision, or numerically divergent state for the same tokens (e.g. a
  different GEMM blocking), keeps a private block rather than aliasing
  silently.  On a miss the block is committed under the key.
- **Admission.**  :meth:`admit` walks a new session's prefix keys left
  to right and adopts every committed hit, so a restore only has to
  read the non-shared suffix from storage.
- **Copy-on-write.**  Appends into a tail block that is shared
  (refcount > 1) or published first duplicate it; a block with
  refcount > 1 is never written.
- **Graceful fallback.**  A non-contiguous append (the session has
  storage-resident tokens the store never saw) or pool exhaustion
  releases the session's table and returns ``False`` — the caller keeps
  its private, unshared path and bit-exactness is never at risk.

Concurrency contract: session-table operations take the store's own
lock, because concurrent restores of *distinct* sessions (the threaded
executor's ``restore_contexts``) admit and publish in parallel.  Block
*content* writes stay single-writer per block — only a table holding a
block at refcount 1 writes rows — and the pool's metadata lock keeps its
index consistent underneath.
"""

from __future__ import annotations

import threading
from typing import Mapping

import numpy as np

from repro.errors import CapacityError, ConfigError, StateError
from repro.state.keys import GENESIS_KEY, chain_key, prefix_block_keys
from repro.state.pool import BlockPool
from repro.state.table import BlockTable

#: Row representations a block carries, matching the storage tier's
#: ``kind`` vocabulary: ``hidden`` rows are ``(n, hidden_width)``;
#: ``kv`` rows are packed ``(n, 2 * n_kv_heads * head_dim)`` in
#: :meth:`repro.models.kv_cache.KVCache.packed_rows` layout.
ROW_KINDS = ("hidden", "kv")


class StoreStats:
    """Monotonic counters describing sharing behaviour."""

    __slots__ = (
        "admitted_shared_tokens",
        "capacity_fallbacks",
        "committed_blocks",
        "contiguity_fallbacks",
        "cow_copies",
        "dedup_hits",
        "hash_conflicts",
    )

    def __init__(self) -> None:
        #: Tokens served from the pool (not storage) at admission time.
        self.admitted_shared_tokens = 0
        #: Sessions dropped to the unshared path by pool exhaustion.
        self.capacity_fallbacks = 0
        #: Full blocks published under a fresh prefix key.
        self.committed_blocks = 0
        #: Sessions dropped to the unshared path by a non-contiguous append.
        self.contiguity_fallbacks = 0
        #: Tail blocks duplicated before a write (copy-on-write).
        self.cow_copies = 0
        #: Full blocks replaced by an already-published identical block.
        self.dedup_hits = 0
        #: Key hits whose payload differed bit-wise (kept private).
        self.hash_conflicts = 0


class BlockStateStore:
    """Per-session block tables over one shared refcounted pool."""

    def __init__(self, pool: BlockPool) -> None:
        self.pool = pool
        self.block_tokens = pool.block_tokens
        self._sessions_lock = threading.Lock()
        self._tables: dict[str, BlockTable] = {}  # guarded-by: _sessions_lock
        #: Per-session chain keys, one per *full* block (including private
        #: ones — the chain extends over conflicts so later keys stay
        #: well defined).
        self._chains: dict[str, list[str]] = {}  # guarded-by: _sessions_lock
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------

    def is_tracked(self, session_id: str) -> bool:
        with self._sessions_lock:
            return session_id in self._tables

    def session_ids(self) -> tuple[str, ...]:
        with self._sessions_lock:
            return tuple(self._tables)

    def track(self, session_id: str) -> None:
        """Register a fresh session with an empty table."""
        with self._sessions_lock:
            if session_id in self._tables:
                raise StateError(f"session {session_id!r} already tracked")
            self._tables[session_id] = BlockTable(self.block_tokens)
            self._chains[session_id] = []

    def admit(self, session_id: str, token_ids: np.ndarray | list[int]) -> int:
        """Register a session, adopting every committed shared-prefix block.

        Walks the hash chain of ``token_ids`` left to right and stops at
        the first key miss.  Returns the number of tokens now resident in
        the pool (a multiple of ``block_tokens``); the caller restores
        only ``token_ids[shared:]`` from storage.
        """
        ids = [int(t) for t in np.asarray(token_ids, dtype=np.int64)]
        keys = prefix_block_keys(ids, self.block_tokens)
        with self._sessions_lock:
            if session_id in self._tables:
                raise StateError(f"session {session_id!r} already tracked")
            table = BlockTable(self.block_tokens)
            hits = 0
            for key in keys:
                block_id = self.pool.adopt_committed(key)
                if block_id is None:
                    break
                table.blocks.append(block_id)
                hits += 1
            table.n_tokens = hits * self.block_tokens
            table.token_ids = ids[: table.n_tokens]
            self._tables[session_id] = table
            self._chains[session_id] = keys[:hits]
            self.stats.admitted_shared_tokens += table.n_tokens
            return table.n_tokens

    def fork(self, parent: str, child: str) -> None:
        """Give ``child`` a table referencing every parent block (tail too).

        Both sessions may keep appending; the first to write the shared
        partial tail pays the copy-on-write duplication.
        """
        with self._sessions_lock:
            if child in self._tables:
                raise StateError(f"session {child!r} already tracked")
            table = self._table(parent)
            for block_id in table.blocks:
                self.pool.ref(block_id)
            self._tables[child] = BlockTable(
                self.block_tokens,
                blocks=list(table.blocks),
                n_tokens=table.n_tokens,
                token_ids=list(table.token_ids),
            )
            self._chains[child] = list(self._chains[parent])

    def release(self, session_id: str) -> None:
        """Drop a session's table, unreferencing every block (idempotent)."""
        with self._sessions_lock:
            self._release_locked(session_id)

    def _release_locked(self, session_id: str) -> None:  # holds: _sessions_lock
        table = self._tables.pop(session_id, None)
        if table is None:
            return
        self._chains.pop(session_id, None)
        for block_id in table.blocks:
            self.pool.unref(block_id)

    def _table(self, session_id: str) -> BlockTable:  # holds: _sessions_lock
        table = self._tables.get(session_id)
        if table is None:
            raise StateError(f"session {session_id!r} not tracked")
        return table

    def table(self, session_id: str) -> BlockTable:
        """The session's table (read-only by convention; tests inspect it)."""
        with self._sessions_lock:
            return self._table(session_id)

    def resident_tokens(self, session_id: str) -> int:
        """Tokens of the session resident in pool blocks."""
        with self._sessions_lock:
            return self._table(session_id).n_tokens

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def append(
        self,
        session_id: str,
        start: int,
        token_ids: np.ndarray | list[int],
        rows: Mapping[tuple[int, str], np.ndarray],
    ) -> bool:
        """Extend a session's resident prefix with state rows.

        ``rows`` maps ``(layer, kind)`` to the new tokens' rows in the
        stored representation (see :data:`ROW_KINDS`); ``start`` is the
        session's token offset of the first new row.  Returns ``True``
        when the rows landed; ``False`` when the session fell back to the
        unshared path (non-contiguous append or pool exhaustion), after
        which it is no longer tracked.
        """
        ids = [int(t) for t in np.asarray(token_ids, dtype=np.int64)]
        checked = self._checked_rows(rows, len(ids))
        with self._sessions_lock:
            table = self._table(session_id)
            if start != table.n_tokens:
                self.stats.contiguity_fallbacks += 1
                self._release_locked(session_id)
                return False
            if not ids:
                return True
            try:
                self._write_rows(session_id, table, ids, checked)
            except CapacityError:
                self.stats.capacity_fallbacks += 1
                self._release_locked(session_id)
                return False
            return True

    def _checked_rows(
        self, rows: Mapping[tuple[int, str], np.ndarray], n_tokens: int
    ) -> list[tuple[int, str, np.ndarray]]:
        checked: list[tuple[int, str, np.ndarray]] = []
        for (layer, kind), arr in rows.items():
            if not 0 <= layer < self.pool.n_layers:
                raise ConfigError(f"layer {layer} out of range")
            if kind not in ROW_KINDS:
                raise ConfigError(f"unknown row kind {kind!r}")
            arr = np.asarray(arr, dtype=np.float32)
            width = self.pool.hidden_width if kind == "hidden" else self.pool.kv_width
            if arr.shape != (n_tokens, width):
                raise ConfigError(
                    f"{kind} rows for layer {layer} must be ({n_tokens}, {width}), "
                    f"got {arr.shape}"
                )
            checked.append((layer, kind, arr))
        return checked

    def _write_rows(  # holds: _sessions_lock
        self,
        session_id: str,
        table: BlockTable,
        ids: list[int],
        rows: list[tuple[int, str, np.ndarray]],
    ) -> None:
        block_tokens = self.block_tokens
        kv_half = self.pool.kv_width // 2
        written = 0
        n = len(ids)
        while written < n:
            fill = table.n_tokens % block_tokens
            if fill == 0:
                block_id = self.pool.allocate()
                table.blocks.append(block_id)
            else:
                block_id = self._writable_tail(table)
            take = min(block_tokens - fill, n - written)
            for layer, kind, arr in rows:
                chunk = arr[written : written + take]
                if kind == "hidden":
                    self.pool.hidden_view(block_id, layer)[fill : fill + take] = chunk
                else:
                    k_rows, v_rows = self.pool.kv_views(block_id, layer)
                    shape = (take, self.pool.n_kv_heads, self.pool.head_dim)
                    k_rows[fill : fill + take] = chunk[:, :kv_half].reshape(shape)
                    v_rows[fill : fill + take] = chunk[:, kv_half:].reshape(shape)
            table.token_ids.extend(ids[written : written + take])
            table.n_tokens += take
            written += take
            if fill + take == block_tokens:
                self._seal_full_block(session_id, table)

    def _writable_tail(self, table: BlockTable) -> int:  # holds: _sessions_lock
        """The tail block, made exclusively writable (copy-on-write)."""
        block_id = table.blocks[-1]
        if (
            self.pool.refcount(block_id) > 1
            or self.pool.committed_key(block_id) is not None
        ):
            private = self.pool.copy_block(block_id)
            self.pool.unref(block_id)
            table.blocks[-1] = private
            self.stats.cow_copies += 1
            return private
        return block_id

    def _seal_full_block(self, session_id: str, table: BlockTable) -> None:  # holds: _sessions_lock
        """Derive the just-filled block's chain key; dedup or publish it."""
        chain = self._chains[session_id]
        index = len(chain)
        start = index * self.block_tokens
        prev = chain[-1] if chain else GENESIS_KEY
        key = chain_key(prev, table.token_ids[start : start + self.block_tokens])
        chain.append(key)
        block_id = table.blocks[index]
        if self.pool.committed_key(block_id) is not None:
            # Adopted (or already deduplicated) shared block — nothing to
            # publish.  Defensive: a full block a table writes is private
            # by the copy-on-write rule, so this should be unreachable.
            return
        existing = self.pool.lookup(key)
        if existing is None:
            self.pool.commit(block_id, key)
            self.stats.committed_blocks += 1
        elif self.pool.blocks_equal(existing, block_id):
            self.pool.ref(existing)
            table.blocks[index] = existing
            self.pool.unref(block_id)
            self.stats.dedup_hits += 1
        else:
            # Same chain key, different payload: a hash collision or
            # numerically divergent state for identical tokens.  The
            # block stays private and unpublished; sharing degrades,
            # correctness does not.
            self.stats.hash_conflicts += 1

    # ------------------------------------------------------------------
    # reads (restore path)
    # ------------------------------------------------------------------

    def hidden_rows(self, session_id: str, index: int, layer: int) -> np.ndarray:
        """Resident hidden rows of block ``index``: ``(rows, hidden_width)``."""
        with self._sessions_lock:
            table = self._table(session_id)
            start, stop = table.block_span(index)
            view = self.pool.hidden_view(table.blocks[index], layer)
            return view[: stop - start]

    def kv_rows(
        self, session_id: str, index: int, layer: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resident K/V rows of block ``index``: ``(rows, heads, head_dim)``."""
        with self._sessions_lock:
            table = self._table(session_id)
            start, stop = table.block_span(index)
            k_rows, v_rows = self.pool.kv_views(table.blocks[index], layer)
            return k_rows[: stop - start], v_rows[: stop - start]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    @property
    def logical_blocks(self) -> int:
        """Block references summed over every table (with multiplicity)."""
        with self._sessions_lock:
            return sum(len(t.blocks) for t in self._tables.values())

    @property
    def physical_blocks(self) -> int:
        """Distinct pool blocks referenced by at least one table."""
        with self._sessions_lock:
            return len({b for t in self._tables.values() for b in t.blocks})

    def admission_headroom(self, n_tokens: int) -> bool:
        """Can the pool absorb ``n_tokens`` of new session state right now?

        The serving front end's pool-pressure admission check: a request
        whose full context needs more blocks than the pool can free
        (free blocks + refcount-0 eviction candidates) must stay queued —
        admitting it would crash mid-iteration with a
        :class:`~repro.errors.CapacityError` deep inside a state append.
        Worst case is assumed (no prefix sharing, a fresh partial tail
        block), so a ``True`` here can only over-reserve, never admit a
        request the pool cannot hold.
        """
        if n_tokens < 0:
            raise ConfigError("n_tokens must be non-negative")
        blocks_needed = -(-n_tokens // self.pool.block_tokens)
        return blocks_needed <= self.pool.headroom_blocks

    def dedup_ratio(self) -> float:
        """Logical over physical blocks (1.0 when nothing is shared)."""
        with self._sessions_lock:
            logical = sum(len(t.blocks) for t in self._tables.values())
            physical = len({b for t in self._tables.values() for b in t.blocks})
        if physical == 0:
            return 1.0
        return logical / physical

    def state_bytes_saved(self) -> int:
        """Backing bytes sharing avoids versus fully private tables."""
        with self._sessions_lock:
            logical = sum(len(t.blocks) for t in self._tables.values())
            physical = len({b for t in self._tables.values() for b in t.blocks})
        return (logical - physical) * self.pool.block_nbytes()

    # ------------------------------------------------------------------
    # invariants (tests)
    # ------------------------------------------------------------------

    def debug_validate(self) -> None:
        """Cross-check refcounts, reachability, and chain keys (tests only).

        Assumes this store is the pool's only client, which lets it
        assert the central invariant: every block's refcount equals the
        number of tables referencing it.
        """
        with self._sessions_lock:
            counts: dict[int, int] = {}
            for table in self._tables.values():
                for block_id in table.blocks:
                    counts[block_id] = counts.get(block_id, 0) + 1
            for block_id in range(self.pool.capacity_blocks):
                expected = counts.get(block_id, 0)
                actual = self.pool.refcount(block_id)
                if actual != expected:
                    raise StateError(
                        f"block {block_id} refcount {actual} != "
                        f"{expected} referencing tables"
                    )
            for session_id, table in self._tables.items():
                if len(table.token_ids) != table.n_tokens:
                    raise StateError(f"session {session_id!r} token log out of sync")
                if len(table.blocks) != -(-table.n_tokens // self.block_tokens):
                    raise StateError(f"session {session_id!r} table size out of sync")
                chain = self._chains[session_id]
                if chain != prefix_block_keys(table.token_ids, self.block_tokens):
                    raise StateError(f"session {session_id!r} chain keys diverged")
        self.pool.debug_validate()
