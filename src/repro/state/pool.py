"""A refcounted pool of fixed-size KV + hidden-state blocks.

The pool owns three stacked backing arrays — K and V blocks of shape
``(capacity_blocks, n_layers, block_tokens, n_kv_heads, head_dim)`` and
hidden-state blocks of shape ``(capacity_blocks, n_layers, block_tokens,
hidden_width)`` — and hands out block ids.  Every block id carries a
refcount equal to the number of session block tables referencing it
(:class:`repro.state.BlockStateStore` maintains that equality and the
property harness asserts it after every operation).

Lifecycle of a block:

- ``allocate`` takes a free block (or evicts, below) at refcount 1.
- ``ref``/``unref`` track table references; a block that drops to
  refcount 0 is *freed immediately* if it was never committed, or parked
  as an eviction candidate if it was.
- ``commit`` publishes a full block under its hash-chained prefix key
  (:mod:`repro.state.keys`); ``lookup`` is the prefix-cache probe new
  sessions use on admission.
- Eviction is refcount-aware LRU over committed blocks only
  (:class:`repro.cache.lru.PinnedLRU`): blocks pinned by a live refcount
  are never victims; the refcount-0 tail goes first, least recently used
  first.  When every block is pinned, allocation raises
  :class:`~repro.errors.CapacityError` — shared state is never torn out
  from under a live table.

Threading: all refcount/index/eviction metadata is guarded by ``_lock``
(the store's prefix lookups may run during another session's restore).
Block *content* is single-writer by construction — only a table holding
the block at refcount 1 writes rows (copy-on-write above this layer
guarantees it) — so content reads need no lock once a block is resident.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.cache.lru import PinnedLRU
from repro.errors import CapacityError, ConfigError, StateError


class PoolStats:
    """Counters for pool behaviour (monotonic, informational).

    Attributes:
        evictions: Committed refcount-0 blocks reclaimed for reuse.
        lookup_hits: Prefix-key probes that found a committed block.
        lookup_misses: Prefix-key probes that found nothing.
    """

    __slots__ = ("evictions", "lookup_hits", "lookup_misses")

    def __init__(self) -> None:
        self.evictions = 0
        self.lookup_hits = 0
        self.lookup_misses = 0


class BlockPool:
    """Refcounted fixed-size state blocks with content-hash lookup."""

    def __init__(
        self,
        n_layers: int,
        block_tokens: int,
        n_kv_heads: int,
        head_dim: int,
        hidden_width: int,
        capacity_blocks: int,
    ) -> None:
        if min(n_layers, block_tokens, n_kv_heads, head_dim, hidden_width) <= 0:
            raise ConfigError("pool geometry must be positive in every dimension")
        if capacity_blocks <= 0:
            raise ConfigError("pool needs at least one block")
        self.n_layers = n_layers
        self.block_tokens = block_tokens
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.hidden_width = hidden_width
        self.capacity_blocks = capacity_blocks
        #: Per-token KV element count of one layer (K and V concatenated),
        #: the packed width the storage manager stores for ``kind="kv"``.
        self.kv_width = 2 * n_kv_heads * head_dim
        self._k = np.zeros(
            (capacity_blocks, n_layers, block_tokens, n_kv_heads, head_dim),
            dtype=np.float32,
        )
        self._v = np.zeros_like(self._k)
        self._hidden = np.zeros(
            (capacity_blocks, n_layers, block_tokens, hidden_width), dtype=np.float32
        )
        self._lock = threading.Lock()
        self._refcounts = [0] * capacity_blocks  # guarded-by: _lock
        self._free = list(range(capacity_blocks - 1, -1, -1))  # guarded-by: _lock
        self._committed: dict[str, int] = {}  # guarded-by: _lock
        self._key_of: dict[int, str] = {}  # guarded-by: _lock
        self._lru = PinnedLRU()  # guarded-by: _lock
        self.stats = PoolStats()

    # ------------------------------------------------------------------
    # allocation / refcounts
    # ------------------------------------------------------------------

    def allocate(self) -> int:
        """Take a block at refcount 1, evicting a refcount-0 LRU victim if full.

        Raises:
            CapacityError: when every block is referenced by a live table
                (nothing is evictable).
        """
        with self._lock:
            if self._free:
                block_id = self._free.pop()
            else:
                victim = self._lru.pop_lru()
                if victim is None:
                    raise CapacityError(
                        f"all {self.capacity_blocks} blocks are pinned by live tables"
                    )
                block_id = int(victim)
                del self._committed[self._key_of.pop(block_id)]
                self.stats.evictions += 1
            if self._refcounts[block_id] != 0:
                raise StateError(f"block {block_id} allocated at nonzero refcount")
            self._refcounts[block_id] = 1
        # Content is zeroed outside the lock: the block is exclusively
        # owned from the moment its refcount became 1, and deterministic
        # zero fill keeps content-equality checks stable for partially
        # filled blocks.
        self._k[block_id] = 0.0
        self._v[block_id] = 0.0
        self._hidden[block_id] = 0.0
        return block_id

    def _check_block(self, block_id: int) -> None:
        if not 0 <= block_id < self.capacity_blocks:
            raise ConfigError(f"block {block_id} out of range")

    def ref(self, block_id: int) -> None:
        """Add one table reference to a reachable block.

        Reachable means refcount > 0 *or* committed (a refcount-0
        committed block is an eviction candidate a dedup hit or admission
        may still adopt — doing so re-pins it).
        """
        self._check_block(block_id)
        with self._lock:
            count = self._refcounts[block_id]
            if count < 0:
                raise StateError(f"block {block_id} refcount is negative")
            if count == 0:
                if block_id not in self._key_of:
                    raise StateError(f"cannot ref dead block {block_id}")
                self._lru.pin(block_id)
            self._refcounts[block_id] = count + 1

    def unref(self, block_id: int) -> None:
        """Drop one table reference.

        At refcount 0 an uncommitted block returns to the free list at
        once (nothing can ever find it again); a committed block stays
        resident as an eviction candidate so a future admission can still
        hit its prefix key.
        """
        self._check_block(block_id)
        with self._lock:
            if self._refcounts[block_id] <= 0:
                raise StateError(f"cannot unref dead block {block_id}")
            self._refcounts[block_id] -= 1
            if self._refcounts[block_id] == 0:
                if block_id in self._key_of:
                    self._lru.unpin(block_id)
                else:
                    self._free.append(block_id)

    def refcount(self, block_id: int) -> int:
        self._check_block(block_id)
        with self._lock:
            return self._refcounts[block_id]

    # ------------------------------------------------------------------
    # the content-hash prefix index
    # ------------------------------------------------------------------

    def commit(self, block_id: int, key: str) -> None:
        """Publish a full block under its hash-chained prefix key."""
        self._check_block(block_id)
        if not key:
            raise ConfigError("cannot commit under an empty key")
        with self._lock:
            if self._refcounts[block_id] <= 0:
                raise StateError(f"cannot commit dead block {block_id}")
            if key in self._committed:
                raise StateError(f"key {key[:12]}… already committed")
            if block_id in self._key_of:
                raise StateError(f"block {block_id} already committed")
            self._committed[key] = block_id
            self._key_of[block_id] = key
            self._lru.add(block_id, pinned=True)

    def lookup(self, key: str) -> int | None:
        """Prefix-cache probe: the committed block for ``key``, or ``None``.

        A hit refreshes the block's LRU recency but does NOT take a
        reference — the caller refs it when it actually adopts the block
        into a table.
        """
        with self._lock:
            block_id = self._committed.get(key)
            if block_id is None:
                self.stats.lookup_misses += 1
                return None
            self.stats.lookup_hits += 1
            self._lru.touch(block_id)
            return block_id

    def committed_key(self, block_id: int) -> str | None:
        """The key a block is committed under, or ``None`` (private block)."""
        self._check_block(block_id)
        with self._lock:
            return self._key_of.get(block_id)

    def adopt_committed(self, key: str) -> int | None:
        """Atomically look up ``key`` and take a reference on the hit.

        The admission fast path: probe and ref under one lock hold, so a
        concurrent ``unref``-to-zero between the two can never hand the
        admitting session an eviction candidate that just got reclaimed.
        Returns the block id, or ``None`` on a miss.
        """
        with self._lock:
            block_id = self._committed.get(key)
            if block_id is None:
                self.stats.lookup_misses += 1
                return None
            self.stats.lookup_hits += 1
            self._lru.touch(block_id)
            if self._refcounts[block_id] == 0:
                self._lru.pin(block_id)
            self._refcounts[block_id] += 1
            return block_id

    # ------------------------------------------------------------------
    # content access
    # ------------------------------------------------------------------

    def kv_views(self, block_id: int, layer: int) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(block_tokens, n_kv_heads, head_dim)`` K/V views."""
        self._check_block(block_id)
        if not 0 <= layer < self.n_layers:
            raise ConfigError(f"layer {layer} out of range")
        return self._k[block_id, layer], self._v[block_id, layer]

    def hidden_view(self, block_id: int, layer: int) -> np.ndarray:
        """Zero-copy ``(block_tokens, hidden_width)`` hidden-state view."""
        self._check_block(block_id)
        if not 0 <= layer < self.n_layers:
            raise ConfigError(f"layer {layer} out of range")
        return self._hidden[block_id, layer]

    def copy_block(self, src_id: int) -> int:
        """Copy-on-write: allocate a private duplicate of ``src_id``.

        The caller owns arranging refcounts (unref the shared source,
        keep the copy at its fresh refcount 1).  The copy is *not*
        committed even if the source was — a diverging tail is private
        until it fills under its own chain key.
        """
        self._check_block(src_id)
        with self._lock:
            if self._refcounts[src_id] <= 0:
                raise StateError(f"cannot copy dead block {src_id}")
        dst_id = self.allocate()
        self._k[dst_id] = self._k[src_id]
        self._v[dst_id] = self._v[src_id]
        self._hidden[dst_id] = self._hidden[src_id]
        return dst_id

    def blocks_equal(self, a: int, b: int) -> bool:
        """Bit-exact content comparison of two blocks (all layers, kinds)."""
        self._check_block(a)
        self._check_block(b)
        return (
            np.array_equal(self._k[a], self._k[b])
            and np.array_equal(self._v[a], self._v[b])
            and np.array_equal(self._hidden[a], self._hidden[b])
        )

    # ------------------------------------------------------------------
    # accounting / introspection
    # ------------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        with self._lock:
            return len(self._free)

    @property
    def live_blocks(self) -> int:
        """Blocks currently referenced by at least one table."""
        with self._lock:
            return sum(1 for r in self._refcounts if r > 0)

    @property
    def resident_blocks(self) -> int:
        """Referenced blocks plus committed refcount-0 eviction candidates."""
        with self._lock:
            return self.capacity_blocks - len(self._free)

    def evictable_blocks(self) -> tuple[int, ...]:
        """Committed refcount-0 block ids, least recently used first."""
        with self._lock:
            return tuple(int(b) for b in self._lru.unpinned_lru_order())

    @property
    def headroom_blocks(self) -> int:
        """Blocks an allocation burst could obtain right now.

        Free blocks plus committed refcount-0 eviction candidates, read
        under one lock acquisition so serving admission control sees a
        consistent snapshot — summing :attr:`free_blocks` and
        ``len(evictable_blocks())`` separately could double- or
        under-count across a concurrent allocate/release.
        """
        with self._lock:
            return len(self._free) + len(self._lru.unpinned_lru_order())

    def block_nbytes(self) -> int:
        """Bytes of backing storage one block spans (all layers, kinds)."""
        return int(self._k[0].nbytes + self._v[0].nbytes + self._hidden[0].nbytes)

    def debug_validate(self) -> None:
        """Expensive cross-structure invariant check (tests only)."""
        with self._lock:
            free = set(self._free)
            if len(free) != len(self._free):
                raise StateError("free list holds duplicates")
            for block_id in free:
                if self._refcounts[block_id] != 0:
                    raise StateError(f"free block {block_id} has a nonzero refcount")
                if block_id in self._key_of:
                    raise StateError(f"free block {block_id} is still committed")
            if set(self._committed.values()) != set(self._key_of):
                raise StateError("committed index and key map disagree")
            for key, block_id in self._committed.items():
                if self._key_of.get(block_id) != key:
                    raise StateError(f"block {block_id} key mapping is inconsistent")
                if block_id not in self._lru:
                    raise StateError(f"committed block {block_id} missing from LRU")
                pinned = self._lru.is_pinned(block_id)
                if pinned != (self._refcounts[block_id] > 0):
                    raise StateError(
                        f"block {block_id} LRU pin disagrees with refcount"
                    )
            for block_id in range(self.capacity_blocks):
                if self._refcounts[block_id] < 0:
                    raise StateError(f"block {block_id} refcount is negative")
                if (
                    self._refcounts[block_id] == 0
                    and block_id not in free
                    and block_id not in self._key_of
                ):
                    raise StateError(f"block {block_id} leaked (dead but not free)")
