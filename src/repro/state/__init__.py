"""Block-paged session state with cross-session prefix sharing.

A :class:`BlockPool` of refcounted fixed-size KV + hidden-state blocks,
per-session :class:`BlockTable` indirection, hash-chained content keys
per token prefix (:mod:`repro.state.keys`), and the
:class:`BlockStateStore` that ties them together: prefix-cache admission,
copy-on-write on divergence, content-verified dedup on commit, and
refcount-aware LRU eviction.  The serving engine re-points its restore
path at the store so shared prefixes are served from the pool and only
the non-shared suffix is read from storage — bit-exactly equal to the
fully private path.
"""

from repro.state.keys import GENESIS_KEY, chain_key, prefix_block_keys
from repro.state.pool import BlockPool, PoolStats
from repro.state.store import BlockStateStore, StoreStats
from repro.state.table import BlockTable

__all__ = [
    "GENESIS_KEY",
    "BlockPool",
    "BlockStateStore",
    "BlockTable",
    "PoolStats",
    "StoreStats",
    "chain_key",
    "prefix_block_keys",
]
