"""GQA/MQA-aware restoration analysis (paper §7 extension).

The paper scopes HCache to MHA models: with multi-head attention the
hidden state (``D`` elements) is half the KV pair (``2D``), so caching it
saves transmission.  Grouped-query attention shrinks KV by the group
factor — with 8 KV heads out of 64, a KV pair is ``2D/8 = D/4``, *smaller*
than the hidden state — and the paper suggests handling this by "first
projecting the hidden states into a low-rank representation".

This module quantifies that regime change and makes the scheduler handle
it: :func:`gqa_aware_schedule` searches the full partition space (the
closed forms assume the MHA byte ratio), and :func:`analyze_gqa` reports
where the crossover sits for a model family.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import accumulate

from repro.core.profiler import profile_platform
from repro.core.scheduler import BubbleFreeScheduler, ScheduleDecision
from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.simulator.hardware import Platform


@dataclass(frozen=True)
class GQAAnalysis:
    """Restoration economics of one attention configuration.

    Attributes:
        config: The analyzed model configuration.
        hidden_to_kv_ratio: Stored bytes of a hidden state over a KV pair
            (0.5 for MHA; > 1 once KV heads shrink below half the query
            heads).
        hcache_transmission_wins: True while hidden states are the smaller
            transfer — the classic HCache regime.
        decision: The (search-based) scheduler's partition for this config.
    """

    config: ModelConfig
    hidden_to_kv_ratio: float
    hcache_transmission_wins: bool
    decision: ScheduleDecision


def with_kv_heads(config: ModelConfig, n_kv_heads: int) -> ModelConfig:
    """Derive a GQA variant of ``config`` with ``n_kv_heads`` KV heads."""
    if n_kv_heads <= 0 or config.n_heads % n_kv_heads != 0:
        raise ConfigError(
            f"n_kv_heads {n_kv_heads} must divide n_heads {config.n_heads}"
        )
    return replace(
        config,
        name=f"{config.name}-gqa{n_kv_heads}",
        n_kv_heads=n_kv_heads,
    )


def partition_kv_heads(
    n_kv_heads: int, n_shards: int
) -> tuple[tuple[int, int], ...]:
    """Split ``n_kv_heads`` KV heads into ``n_shards`` contiguous ranges.

    This is the tensor dimension of a sharded restoration: each shard
    projects and installs the KV-head range ``[start, stop)`` it is
    handed.  Ranges are GQA-group-aligned by construction — every KV head
    serves a whole group of ``n_heads / n_kv_heads`` query heads, so the
    only legal split boundaries are *between* KV heads.  Asking for more
    shards than KV heads would force a boundary through a group (the
    naive "split by query heads" mistake), which silently misprojects
    under GQA; that is rejected here rather than realigned downstream.

    Non-divisible counts are balanced: range sizes differ by at most one,
    larger ranges first.

    Returns:
        ``n_shards`` ``(start, stop)`` pairs covering ``[0, n_kv_heads)``
        contiguously.

    Raises:
        ConfigError: for non-positive inputs, or when ``n_shards``
            exceeds ``n_kv_heads`` (a KV head — one GQA group — is the
            smallest unit a tensor shard can own).
    """
    if n_kv_heads < 1:
        raise ConfigError(f"n_kv_heads must be positive, got {n_kv_heads}")
    if n_shards < 1:
        raise ConfigError(f"tensor shard count must be positive, got {n_shards}")
    if n_shards > n_kv_heads:
        raise ConfigError(
            f"{n_shards} tensor shards over {n_kv_heads} KV heads would split "
            "a GQA group across shards; use at most one shard per KV head"
        )
    base, extra = divmod(n_kv_heads, n_shards)
    bounds = list(
        accumulate((base + (1 if rank < extra else 0) for rank in range(n_shards)), initial=0)
    )
    return tuple(zip(bounds[:-1], bounds[1:]))


def hidden_to_kv_ratio(config: ModelConfig) -> float:
    """Stored-byte ratio of hidden states to the KV pair (per token-layer)."""
    return config.hidden_bytes_per_token_layer / config.kv_bytes_per_token_layer


def gqa_aware_schedule(
    config: ModelConfig, platform: Platform, n_tokens: int
) -> ScheduleDecision:
    """Schedule a restoration without assuming the MHA byte ratio.

    The §4.1.2 closed forms encode "hidden = KV/2"; under aggressive GQA
    the optimum can be pure KV offload, which only the exhaustive search
    is guaranteed to find.  Layer counts are small, so the search is cheap.
    """
    profile = profile_platform(config, platform, n_tokens)
    return BubbleFreeScheduler(config.n_layers).schedule_by_search(profile)


def analyze_gqa(
    config: ModelConfig, platform: Platform, n_tokens: int, n_kv_heads: int
) -> GQAAnalysis:
    """Analyze one GQA variant's restoration strategy."""
    variant = with_kv_heads(config, n_kv_heads)
    ratio = hidden_to_kv_ratio(variant)
    return GQAAnalysis(
        config=variant,
        hidden_to_kv_ratio=ratio,
        hcache_transmission_wins=ratio < 1.0,
        decision=gqa_aware_schedule(variant, platform, n_tokens),
    )


def gqa_crossover_heads(config: ModelConfig) -> int:
    """The KV-head count at which hidden states stop being smaller.

    Hidden bytes = ``D``; KV bytes = ``2 * D * kv_heads / heads``.  They
    break even at ``kv_heads = heads / 2``; below that, storing raw KV is
    cheaper than storing hidden states and classic HCache loses its
    transmission edge (motivating the paper's low-rank suggestion).
    """
    return config.n_heads // 2
