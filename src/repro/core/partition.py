"""State partition schemes (§4.1.1).

A partition assigns every transformer layer one of three restoration
methods: HCache (hidden states), KV offload, or token recomputation.  The
paper's layer-wise partition keeps whole layers homogeneous; the token-wise
alternative (evaluated in the Fig. 13 ablation and rejected) splits the
token run instead.  Both are modelled here, together with the per-token
storage accounting behind Table 3: hidden layers store ``D`` elements per
token, KV layers ``2D``, and recomputed layers nothing at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SchedulingError
from repro.models.config import ModelConfig
from repro.simulator.pipeline import LayerMethod


@dataclass(frozen=True)
class PartitionScheme:
    """A layer-wise assignment of restoration methods.

    Attributes:
        methods: ``methods[L]`` is the restoration method of layer ``L``.
            Token-recomputed layers must form a prefix — they rebuild their
            KV (and the boundary hidden state) from the embedding forward.
    """

    methods: tuple[LayerMethod, ...]

    def __post_init__(self) -> None:
        if not self.methods:
            raise SchedulingError("partition scheme must cover at least one layer")
        recompute = [i for i, m in enumerate(self.methods) if m is LayerMethod.RECOMPUTE]
        if recompute and recompute != list(range(len(recompute))):
            raise SchedulingError(
                f"recompute layers must be a prefix, got layers {recompute}"
            )

    @property
    def n_layers(self) -> int:
        return len(self.methods)

    @property
    def n_hidden(self) -> int:
        """``L_H`` — layers restored from hidden states."""
        return sum(1 for m in self.methods if m is LayerMethod.HIDDEN)

    @property
    def n_kv(self) -> int:
        return sum(1 for m in self.methods if m is LayerMethod.KV)

    @property
    def n_recompute(self) -> int:
        return sum(1 for m in self.methods if m is LayerMethod.RECOMPUTE)

    @property
    def n_other(self) -> int:
        """``L_O`` — layers restored by the complementary method."""
        return self.n_layers - self.n_hidden

    def layers_with(self, method: LayerMethod) -> tuple[int, ...]:
        return tuple(i for i, m in enumerate(self.methods) if m is method)

    def describe(self) -> str:
        """Table 3-style summary, e.g. ``"31 H + 1 KV"``."""
        parts = [f"{self.n_hidden} H"]
        if self.n_kv:
            parts.append(f"{self.n_kv} KV")
        if self.n_recompute:
            parts.append(f"{self.n_recompute} RE")
        return " + ".join(parts)

    def storage_bytes_per_token(self, config: ModelConfig) -> int:
        """Stored bytes per context token under this scheme (Table 3).

        Hidden layers cost half a KV layer; recomputed layers cost nothing
        — the source of HCache's 1.92-2.40x storage saving.
        """
        if config.n_layers != self.n_layers:
            raise ConfigError(
                f"scheme covers {self.n_layers} layers, model has {config.n_layers}"
            )
        return (
            self.n_hidden * config.hidden_bytes_per_token_layer
            + self.n_kv * config.kv_bytes_per_token_layer
        )

    @classmethod
    def pure_hcache(cls, n_layers: int) -> "PartitionScheme":
        """All layers from hidden states (the HCache-O ablation variant)."""
        return cls(tuple(LayerMethod.HIDDEN for _ in range(n_layers)))

    @classmethod
    def pure_kv(cls, n_layers: int) -> "PartitionScheme":
        return cls(tuple(LayerMethod.KV for _ in range(n_layers)))

    @classmethod
    def pure_recompute(cls, n_layers: int) -> "PartitionScheme":
        return cls(tuple(LayerMethod.RECOMPUTE for _ in range(n_layers)))

    @classmethod
    def with_kv_suffix(cls, n_layers: int, n_kv: int) -> "PartitionScheme":
        """``n_layers - n_kv`` hidden layers followed by ``n_kv`` KV layers
        (Fig. 8b: KV offload complements HCache on the last layers)."""
        if not 0 <= n_kv <= n_layers:
            raise SchedulingError(f"n_kv {n_kv} out of range for {n_layers} layers")
        methods = [LayerMethod.HIDDEN] * (n_layers - n_kv) + [LayerMethod.KV] * n_kv
        return cls(tuple(methods))

    @classmethod
    def with_recompute_prefix(cls, n_layers: int, n_recompute: int) -> "PartitionScheme":
        """``n_recompute`` token-recomputed layers, then hidden layers
        (§4.1.2: recomputation must start from the embedding)."""
        if not 0 <= n_recompute <= n_layers:
            raise SchedulingError(
                f"n_recompute {n_recompute} out of range for {n_layers} layers"
            )
        methods = [LayerMethod.RECOMPUTE] * n_recompute + [LayerMethod.HIDDEN] * (
            n_layers - n_recompute
        )
        return cls(tuple(methods))


@dataclass(frozen=True)
class TokenPartition:
    """A token-wise split of the history (Fig. 8a, ablation only).

    Attributes:
        n_hidden_tokens: Tokens restored from hidden states on every layer.
        n_other_tokens: Tokens restored by the complementary method.
    """

    n_hidden_tokens: int
    n_other_tokens: int

    def __post_init__(self) -> None:
        if self.n_hidden_tokens < 0 or self.n_other_tokens < 0:
            raise SchedulingError("token partition counts must be non-negative")

    @property
    def total_tokens(self) -> int:
        return self.n_hidden_tokens + self.n_other_tokens
