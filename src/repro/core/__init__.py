"""HCache core: the paper's contribution.

Hidden-state save/restore orchestration (:class:`HCacheEngine`), the
bubble-free restoration scheduler (§4.1), partition schemes, restoration
timing, and the two-stage saving path (§4.2).
"""

from repro.core.gqa import (
    GQAAnalysis,
    analyze_gqa,
    gqa_aware_schedule,
    gqa_crossover_heads,
    with_kv_heads,
)
from repro.core.hcache import HCacheEngine, RestoreBreakdown, SavedContext
from repro.core.partition import PartitionScheme, TokenPartition
from repro.core.profiler import HardwareProfile, build_storage_array, profile_platform
from repro.core.restoration import (
    RestorationTiming,
    best_tokenwise_partition,
    hcache_only_timing,
    hcache_timing,
    naive_tokenwise_split,
    scheme_timing,
    tokenwise_timing,
)
from repro.core.saving import (
    DecodeSavingImpact,
    DirectIOSaver,
    NoSaver,
    TwoStageSaver,
    decode_tbt_with_saving,
)
from repro.core.scheduler import (
    BubbleFreeScheduler,
    ScheduleDecision,
    evaluate_scheme,
    layer_plans_for_scheme,
)

__all__ = [
    "BubbleFreeScheduler",
    "DecodeSavingImpact",
    "DirectIOSaver",
    "GQAAnalysis",
    "analyze_gqa",
    "gqa_aware_schedule",
    "gqa_crossover_heads",
    "with_kv_heads",
    "HCacheEngine",
    "HardwareProfile",
    "NoSaver",
    "PartitionScheme",
    "RestorationTiming",
    "RestoreBreakdown",
    "SavedContext",
    "ScheduleDecision",
    "TokenPartition",
    "TwoStageSaver",
    "best_tokenwise_partition",
    "build_storage_array",
    "decode_tbt_with_saving",
    "evaluate_scheme",
    "hcache_only_timing",
    "hcache_timing",
    "layer_plans_for_scheme",
    "naive_tokenwise_split",
    "profile_platform",
    "scheme_timing",
    "tokenwise_timing",
]
