"""HCache end-to-end orchestration (§3.1, §4, Fig. 7).

:class:`HCacheEngine` is the public entry point for the *functional* side
of the reproduction: it persists a context's per-layer hidden states (and,
for scheduler-assigned layers, raw KV) into the chunked storage manager as
generation proceeds, evicts GPU state, and later restores a bit-accurate
KV cache by replaying only the K/V projections.  The same object reports
the modelled restoration timing for its platform, so the numeric and
performance views stay consistent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.gqa import partition_kv_heads
from repro.core.partition import PartitionScheme
from repro.core.profiler import profile_platform
from repro.core.restoration import RestorationTiming, scheme_timing
from repro.core.scheduler import BubbleFreeScheduler, ScheduleDecision
from repro.errors import ConfigError, RecoveryError, RestorationError, StateError
from repro.models.kv_cache import KVCache
from repro.models.transformer import ProjectionStats, Transformer
from repro.simulator.hardware import InterconnectSpec, Platform
from repro.simulator.multi_gpu import allgather_time
from repro.simulator.pipeline import (
    LayerMethod,
    ShardedStageTimeline,
    sharded_restoration_makespan,
)
from repro.storage.manager import StorageManager
from repro.storage.streaming import pipelined_makespan

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    # BlockStateStore is typing-only to break the import cycle
    # core.hcache -> repro.state -> repro.cache -> repro.baselines ->
    # repro.core; the store arrives fully constructed by the caller.
    # The runtime executors are typing-only to keep the core layer free
    # of a hard dependency on repro.runtime (it is imported lazily where
    # a sharded restore actually needs it).
    from repro.runtime.executor import RestoreExecutor
    from repro.runtime.sharded import ShardedRestoreExecutor
    from repro.state import BlockStateStore


@dataclass
class RestoreBreakdown:
    """Per-stage accounting of one chunk-streamed restoration.

    Filled by :meth:`HCacheEngine.restore` when passed in.  Measured
    fields are wall-clock seconds of this process.  ``modelled_io_s``
    comes from the storage devices' timing model; the two makespans are
    **hybrid** figures — modelled device IO overlapped against this
    run's *measured* per-granule compute — so they show the structure of
    the §4.1 pipeline (how much the overlap buys on this machine), not a
    host-independent prediction.  With compute overlapping transfer, the
    restoration critical path is ``modelled_pipelined_s``, not the
    serial sum.

    Attributes:
        n_tokens: Tokens restored.
        granules: Streamed granules consumed (across layers and kinds).
        device_reads: Chunk reads issued against storage devices.
        read_s: Measured wall time inside streamed storage reads.
        install_s: Measured wall time installing KV-offloaded chunks.
        recompute_s: Measured wall time replaying a RECOMPUTE prefix.
        projection: Per-stage (norm / GEMM / RoPE) projection times.
        modelled_io_s: Modelled device time of all chunk reads.
        modelled_serial_s: Hybrid makespan of the pre-pipeline shape
            (modelled reads, then all measured compute, serially).
        modelled_pipelined_s: Hybrid makespan with each granule's
            measured compute overlapping the next granule's modelled
            read — the §4.1 shape.
    """

    n_tokens: int = 0
    granules: int = 0
    device_reads: int = 0
    read_s: float = 0.0
    install_s: float = 0.0
    recompute_s: float = 0.0
    projection: ProjectionStats = field(default_factory=ProjectionStats)
    modelled_io_s: float = 0.0
    modelled_serial_s: float = 0.0
    modelled_pipelined_s: float = 0.0
    #: Tokens served from the shared block pool instead of storage (their
    #: chunk reads never reach a device).
    shared_tokens: int = 0
    #: Measured wall time projecting/installing pool-resident blocks.
    pool_s: float = 0.0
    #: Measured submit-side executor overhead: staging-slot acquisition
    #: plus pool handoff per granule (threaded/sharded executors only).
    #: Together with the exposed ``read_s`` stall it itemizes the gap
    #: between wall clock and the modelled makespan.
    dispatch_s: float = 0.0
    #: Hybrid makespan of the sharded timeline: modelled device reads at
    #: the shards' aggregated bandwidth plus per-granule gathers on
    #: concurrent per-stage IO streams, merged against this run's
    #: measured compute on the one calling-thread merge stream (see
    #: :func:`repro.simulator.pipeline.sharded_restoration_makespan`).
    #: Zero for unsharded restores.
    modelled_sharded_s: float = 0.0
    #: ``(pipeline, tensor)`` shard shape of the restore; ``None`` when
    #: unsharded.
    shard_shape: "tuple[int, int] | None" = None


@dataclass(frozen=True)
class SavedContext:
    """Book-keeping for one context the engine manages.

    Attributes:
        context_id: Stable identity.
        scheme: Partition scheme its states were saved under.
        n_tokens: Tokens saved so far.
    """

    context_id: str
    scheme: PartitionScheme
    n_tokens: int


class HCacheEngine:
    """Saves and restores LLM contextual state via hidden states."""

    def __init__(
        self,
        transformer: Transformer,
        storage: StorageManager,
        platform: Platform | None = None,
        scheme: PartitionScheme | None = None,
        stream_granule_chunks: int = 4,
        shared_store: BlockStateStore | None = None,
    ) -> None:
        """Create an engine.

        Args:
            transformer: The serving model (provides the projection
                weights used for restoration).
            storage: Chunked host storage for hidden states / KV.
            platform: Hardware platform for timing queries; when given and
                ``scheme`` is omitted, the bubble-free scheduler picks the
                partition from an offline profile at a reference length.
            scheme: Fixed partition scheme; defaults to pure HCache when
                neither a scheme nor a platform is supplied.
            stream_granule_chunks: Storage chunks coalesced into each
                streamed restore granule.  IO stays chunk-granular; this
                only sets how many rows each fused projection call covers.
            shared_store: Optional block-paged state store
                (:class:`repro.state.BlockStateStore`).  When given,
                saves also publish each context's stored rows into the
                shared pool and restores serve any pool-resident shared
                prefix without touching storage — bit-exactly equal to
                the unshared path.  Its block size must be a multiple of
                the storage chunk size so shared prefixes are always
                chunk-aligned, and its geometry must match the model.
        """
        if stream_granule_chunks <= 0:
            raise ConfigError("stream_granule_chunks must be positive")
        self.transformer = transformer
        self.storage = storage
        self.platform = platform
        self.stream_granule_chunks = stream_granule_chunks
        config = transformer.config
        if scheme is not None:
            if scheme.n_layers != config.n_layers:
                raise ConfigError("scheme layer count mismatches the model")
            self.scheme = scheme
            self.decision: ScheduleDecision | None = None
        elif platform is not None:
            profile = profile_platform(config, platform, n_tokens=1024)
            self.decision = BubbleFreeScheduler(config.n_layers).schedule(profile)
            self.scheme = self.decision.scheme
        else:
            self.scheme = PartitionScheme.pure_hcache(config.n_layers)
            self.decision = None
        if shared_store is not None:
            pool = shared_store.pool
            if pool.block_tokens % storage.tokens_per_chunk != 0:
                raise ConfigError(
                    f"pool blocks of {pool.block_tokens} tokens must be a "
                    f"multiple of the {storage.tokens_per_chunk}-token chunk"
                )
            if (
                pool.n_layers != config.n_layers
                or pool.hidden_width != config.hidden_size
                or pool.n_kv_heads != config.n_kv_heads
                or pool.head_dim != config.head_dim
            ):
                raise ConfigError("shared store geometry mismatches the model")
            if self.scheme.n_recompute == config.n_layers:
                # A pure-recompute scheme stores no state rows at all;
                # tracking sessions would only pin empty blocks.
                shared_store = None
        self.shared_store = shared_store
        self._contexts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # saving
    # ------------------------------------------------------------------

    def register_context(self, context_id: str) -> None:
        """Declare a new context before saving states for it."""
        if context_id in self._contexts:
            raise StateError(f"context {context_id!r} already registered")
        self.storage.register_context(
            context_id,
            n_layers=self.transformer.config.n_layers,
            hidden_width=self.transformer.config.hidden_size,
            dtype=np.float32,
        )
        if self.shared_store is not None:
            self.shared_store.track(context_id)
        self._contexts[context_id] = 0

    def has_context(self, context_id: str) -> bool:
        return context_id in self._contexts

    def saved_tokens(self, context_id: str) -> int:
        if context_id not in self._contexts:
            raise StateError(f"context {context_id!r} not registered")
        return self._contexts[context_id]

    def save_states(
        self,
        context_id: str,
        hidden_states: list[np.ndarray],
        tokens: np.ndarray,
        kv_cache: KVCache | None = None,
    ) -> None:
        """Persist newly generated states for a block of tokens.

        Bit-exactness contract: the bytes stored here are snapshots of the
        arrays passed in (devices copy on write), and every restore flavor
        — naive reference, whole-layer batched, chunk-streamed, threaded —
        returns HIDDEN layers projected from, and KV layers equal to,
        exactly these bytes.  Threading rules: saving is single-threaded
        and must never run concurrently with a restore *of the same
        context* (tail buffers and device key sets would race); saving one
        context while other contexts restore is fine.

        Args:
            context_id: The context the block extends.
            hidden_states: Per-layer ``(n_new, hidden)`` arrays — the
                residual inputs captured during the forward pass.
            tokens: The block's token ids (needed by recompute layers and
                kept for all layers, mirroring the prompt log every serving
                system retains).
            kv_cache: Required when the scheme KV-offloads some layers;
                its trailing ``n_new`` rows for those layers are saved.
        """
        config = self.transformer.config
        if len(hidden_states) != config.n_layers:
            raise ConfigError(
                f"expected {config.n_layers} per-layer hidden states, got {len(hidden_states)}"
            )
        tokens = np.asarray(tokens)
        n_new = hidden_states[0].shape[0]
        if tokens.size != n_new:
            raise ConfigError("token block must match the hidden-state block length")
        if self.scheme.n_kv and kv_cache is None:
            raise ConfigError("scheme KV-offloads layers; a kv_cache is required to save them")
        start = self.saved_tokens(context_id)
        # Token ids are journaled ahead of the state rows: the durable log
        # then always covers the durable rows, so crash recovery can
        # truncate it to the recovered row count without inventing ids.
        self.storage.journal_tokens(context_id, tokens)
        shared_rows: dict[tuple[int, str], np.ndarray] = {}
        publish = (
            self.shared_store is not None
            and self.shared_store.is_tracked(context_id)
        )
        for layer, method in enumerate(self.scheme.methods):
            if method is LayerMethod.HIDDEN:
                self.storage.append(context_id, layer, hidden_states[layer], kind="hidden")
                if publish:
                    shared_rows[(layer, "hidden")] = hidden_states[layer]
            elif method is LayerMethod.KV:
                assert kv_cache is not None
                have = kv_cache.layer_len(layer)
                if have < start + n_new:
                    raise ConfigError(
                        f"kv_cache holds {have} tokens at layer {layer}, "
                        f"need {start + n_new}"
                    )
                # Pack only the new rows — O(block), not O(history).
                packed = kv_cache.packed_rows(layer, start, start + n_new)
                self.storage.append(context_id, layer, packed, kind="kv")
                if publish:
                    shared_rows[(layer, "kv")] = packed
        if publish:
            # Mirror the same bytes into the shared pool (dedup happens as
            # blocks fill).  A False return means the session fell back to
            # the unshared path — storage remains the source of truth, so
            # nothing else changes.
            assert self.shared_store is not None
            self.shared_store.append(context_id, start, tokens, shared_rows)
        self._contexts[context_id] = start + n_new

    def seal(self, context_id: str) -> None:
        """Flush tail chunks when a round ends and GPU state is evicted."""
        self.saved_tokens(context_id)
        self.storage.seal_context(context_id)

    def drop_context(self, context_id: str) -> None:
        """Remove a context's states entirely.

        Shared pool blocks are unreferenced, not destroyed: blocks other
        sessions still reference stay live, and committed refcount-0
        blocks linger as eviction candidates for future admissions.
        """
        self.saved_tokens(context_id)
        if self.shared_store is not None and self.shared_store.is_tracked(context_id):
            self.shared_store.release(context_id)
        self.storage.free_context(context_id)
        del self._contexts[context_id]

    def token_log(self, context_id: str) -> tuple[int, ...]:
        """The context's saved token ids (the prompt log), oldest first."""
        self.saved_tokens(context_id)
        return self.storage.token_log(context_id)

    def context_ids(self) -> tuple[str, ...]:
        return tuple(self._contexts)

    def saved_context(self, context_id: str) -> SavedContext:
        return SavedContext(context_id, self.scheme, self.saved_tokens(context_id))

    @classmethod
    def recover(
        cls,
        transformer: Transformer,
        storage: StorageManager,
        platform: Platform | None = None,
        scheme: PartitionScheme | None = None,
        stream_granule_chunks: int = 4,
        shared_store: BlockStateStore | None = None,
    ) -> "HCacheEngine":
        """Adopt a crash-recovered storage manager's contexts.

        ``storage`` comes from :meth:`StorageManager.recover`; every
        context it holds is re-registered with this engine at its durable
        token count, ready for a normal :meth:`restore`.  The model and
        scheme must match the ones the states were saved under — shape
        mismatches (wrong model) and per-layer row counts that contradict
        the scheme's layer methods raise
        :class:`~repro.errors.RecoveryError` rather than restoring wrong
        state.

        ``shared_store`` may be a fresh (empty) block store: the DRAM
        pool does not survive a crash, but each post-recovery
        :meth:`restore` re-admits its context and republishes the rows it
        streams back, so shared prefixes re-deduplicate to the same
        content-hash keys and refcounts rebuild as survivors restore.
        """
        engine = cls(
            transformer, storage, platform, scheme, stream_granule_chunks,
            shared_store=shared_store,
        )
        config = transformer.config
        for context_id in storage.context_ids():
            meta = storage.meta(context_id)
            if meta.n_layers != config.n_layers or meta.hidden_width != config.hidden_size:
                raise RecoveryError(
                    f"context {context_id!r} was saved for a "
                    f"{meta.n_layers}x{meta.hidden_width} model; this model is "
                    f"{config.n_layers}x{config.hidden_size}"
                )
            n_tokens = len(storage.token_log(context_id))
            for layer, method in enumerate(engine.scheme.methods):
                kind = None
                if method is LayerMethod.HIDDEN:
                    kind = "hidden"
                elif method is LayerMethod.KV:
                    kind = "kv"
                if kind is None:
                    continue
                stored = storage.tokens_stored(context_id, layer, kind=kind)
                if stored != n_tokens:
                    raise RecoveryError(
                        f"context {context_id!r} layer {layer} holds {stored} "
                        f"{kind} rows but {n_tokens} tokens are durable — was it "
                        f"saved under a different partition scheme?"
                    )
            engine._contexts[context_id] = n_tokens
        return engine

    # ------------------------------------------------------------------
    # restoration
    # ------------------------------------------------------------------

    def _check_stored(self, context_id: str, layers: list[int], kind: str, n_tokens: int) -> None:
        for layer in layers:
            stored = self.storage.tokens_stored(context_id, layer, kind=kind)
            if stored != n_tokens:
                raise RestorationError(
                    f"layer {layer} stores {stored} {kind} rows, expected {n_tokens}"
                )

    def restore(
        self,
        context_id: str,
        reserve_tokens: int = 0,
        *,
        stats: RestoreBreakdown | None = None,
        executor: "RestoreExecutor | None" = None,
        shards: "tuple[int, int] | int | None" = None,
    ) -> KVCache:
        """Rebuild the context's full KV cache, chunk-streamed (§4.1).

        Keyword contract (PR 10): ``stats``, ``executor``, and ``shards``
        are keyword-only — the options drifted in one by one across PRs
        3–9 and positional calls silently swapped meaning between
        revisions.  ``restore_sessions``, ``restore_contexts`` and
        ``restore_contexts_async`` follow the same rule for every option
        after the id list.

        Layers marked HIDDEN stream from storage as granules of a few
        chunks each and go through the fused per-chunk projection
        (:meth:`Transformer.project_kv_chunk`) straight into the cache's
        backing buffers; KV layers stream the same way and install chunk
        by chunk; a RECOMPUTE prefix is replayed from the retained
        tokens.  The loop is double-buffered: the next granule's device
        read is issued before the pending granule is projected, so in the
        modelled timeline layer *k*'s projection overlaps layer *k+1*'s
        read — compute starts at IO start, which is exactly what the
        serving simulator's ``request_io_start`` assumes.

        With ``executor`` (a :class:`repro.runtime.RestoreExecutor`), the
        granule reads actually run on background IO workers while this
        thread projects, making the overlap real wall clock instead of
        only modelled; the default stays single-threaded.  Threading
        rules: all projection compute runs on the calling thread in the
        single-threaded granule order, workers only fill staging slots
        they own, and concurrent ``restore`` calls are safe for
        *distinct* contexts sharing one executor (never concurrently with
        a save of the same context).

        Bit-exactness contract: HIDDEN and KV layers come back
        bit-identical to the states that were saved — for every granule
        size, pool size, and executor setting, and identical to the naive
        whole-layer reference path.  A RECOMPUTE prefix replays the
        forward pass as one block, which matches incrementally-decoded
        originals to float rounding (the same GEMM-blocking caveat as
        restoring any decode-produced state).

        ``shards`` partitions this one restoration across a
        ``(pipeline, tensor)`` grid of simulated GPUs (an int means
        ``(int, 1)``): contiguous layer stages drain concurrently, and
        with ``tensor > 1`` each granule's merge is split into
        GQA-group-aligned KV-head ranges
        (:meth:`Transformer.project_kv_chunk_sharded` /
        :meth:`KVCache.install_packed_head_rows`) — the restored bytes
        stay bit-identical to the single-shard path for every shard
        shape.  The shape resolves as follows: an explicit ``shards``
        wins (reusing ``executor``'s pool when one is given, else a
        transient pool of ``pipeline * tensor`` workers); with
        ``shards=None`` a
        :class:`~repro.runtime.sharded.ShardedRestoreExecutor` passed as
        ``executor`` shards by its own :attr:`shard_shape`; otherwise the
        restore is unsharded.

        ``reserve_tokens`` lets the serving engine size the cache for the
        upcoming round up front, so the restored history never has to be
        recopied by a post-restore capacity growth.  ``stats`` (optional)
        collects the per-stage :class:`RestoreBreakdown`; in threaded
        runs its ``read_s`` is the *exposed* IO stall (reads the pipeline
        failed to hide) rather than total read time, and sharded runs
        additionally fill ``shard_shape`` and ``modelled_sharded_s``.
        """
        shard_exec, transient = self._resolve_shards(executor, shards)
        try:
            return self._restore(context_id, reserve_tokens, stats, executor, shard_exec)
        finally:
            if transient:
                assert shard_exec is not None
                shard_exec.close()

    def _resolve_shards(
        self,
        executor: "RestoreExecutor | None",
        shards: "tuple[int, int] | int | None",
    ) -> "tuple[ShardedRestoreExecutor | None, bool]":
        """Resolve ``restore``'s (executor, shards) pair to a shard driver.

        Returns ``(shard_exec, transient)``; ``transient`` means this
        call created the executor and must close it (a no-op for pools it
        merely borrowed — ``close`` only shuts down owned pools).
        """
        from repro.runtime.sharded import ShardedRestoreExecutor

        if shards is None:
            if isinstance(executor, ShardedRestoreExecutor):
                return executor, False
            return None, False
        if isinstance(shards, int):
            shards = (shards, 1)
        shape = (int(shards[0]), int(shards[1]))
        if isinstance(executor, ShardedRestoreExecutor) and executor.shard_shape == shape:
            return executor, False
        if executor is not None:
            return ShardedRestoreExecutor(shape, pool=executor.pool), True
        return ShardedRestoreExecutor(shape), True

    def _restore(
        self,
        context_id: str,
        reserve_tokens: int,
        stats: RestoreBreakdown | None,
        executor: "RestoreExecutor | None",
        shard_exec: "ShardedRestoreExecutor | None",
    ) -> KVCache:
        n_tokens = self.saved_tokens(context_id)
        if n_tokens == 0:
            raise RestorationError(f"context {context_id!r} has no saved state")
        config = self.transformer.config
        positions = np.arange(n_tokens)
        hidden_layers = list(self.scheme.layers_with(LayerMethod.HIDDEN))
        kv_layers = list(self.scheme.layers_with(LayerMethod.KV))
        timed = stats is not None
        if timed:
            stats.n_tokens = n_tokens
        sharded = shard_exec is not None
        tensor_shards = shard_exec.tensor_shards if shard_exec is not None else 1
        # Resolve the head partition up front: an illegal tensor split
        # (more shards than KV heads would cut a GQA group) must raise
        # before any state is touched.
        head_ranges = (
            partition_kv_heads(config.n_kv_heads, tensor_shards)
            if tensor_shards > 1
            else None
        )
        if timed and shard_exec is not None:
            stats.shard_shape = shard_exec.shard_shape
        interconnect = (
            self.platform.interconnect if self.platform is not None else InterconnectSpec()
        )
        sharded_makespan_s = 0.0
        if self.scheme.n_recompute:
            tokens = np.array(self.storage.token_log(context_id)[:n_tokens])
            t0 = time.perf_counter() if timed else 0.0
            cache, _ = self.transformer.recompute_prefix(tokens, self.scheme.n_recompute)
            if timed:
                stats.recompute_s += time.perf_counter() - t0
        else:
            cache = KVCache(config)
        cache.reserve(max(n_tokens, reserve_tokens))
        self._check_stored(context_id, hidden_layers, "hidden", n_tokens)
        self._check_stored(context_id, kv_layers, "kv", n_tokens)
        shared, suffix_rows = self._shared_prefix(context_id, n_tokens)
        if timed:
            stats.shared_tokens = shared
        io_times: list[float] = []
        compute_times: list[float] = []
        if hidden_layers:
            granule_tokens = min(
                n_tokens,
                self.stream_granule_chunks * self.storage.tokens_per_chunk,
            )
            workspace = self.transformer.restore_workspace(
                positions, granule_tokens, sharded=head_ranges is not None
            )
            views = {
                layer: cache.install_view(layer, n_tokens) for layer in hidden_layers
            }
            proj_stats = stats.projection if timed else None
            if shared:
                t0 = time.perf_counter() if timed else 0.0
                # Pool-served rows MUST project in the exact granule
                # partition the storage stream would have used: the fused
                # projection is only bit-stable for a fixed chunk split,
                # not across splits, so serving a block-sized chunk here
                # would diverge from the private path in the last ulp.
                staging = np.empty(
                    (granule_tokens, config.hidden_size), dtype=np.float32
                )
                for layer in hidden_layers:
                    k_view, v_view = views[layer]
                    for span_start in range(0, shared, granule_tokens):
                        span_stop = min(span_start + granule_tokens, shared)
                        rows = span_stop - span_start
                        self._gather_pool_hidden(
                            context_id, layer, span_start, span_stop, staging
                        )
                        self.transformer.project_kv_chunk(
                            layer,
                            staging[:rows],
                            span_start,
                            k_view[span_start:span_stop],
                            v_view[span_start:span_stop],
                            workspace,
                            proj_stats,
                        )
                if timed:
                    stats.pool_s += time.perf_counter() - t0

            def project_hidden(chunk) -> None:
                k_view, v_view = views[chunk.layer]
                if head_ranges is not None:
                    # Tensor-sharded merge: full-width norm+GEMMs (the
                    # GEMM split is not bit-stable), head-sliced RoPE and
                    # installs — one call per granule covering every
                    # rank's disjoint range.
                    self.transformer.project_kv_chunk_sharded(
                        chunk.layer,
                        chunk.data,
                        chunk.start,
                        k_view[chunk.start : chunk.stop],
                        v_view[chunk.start : chunk.stop],
                        workspace,
                        head_ranges,
                        proj_stats,
                    )
                else:
                    self.transformer.project_kv_chunk(
                        chunk.layer,
                        chunk.data,
                        chunk.start,
                        k_view[chunk.start : chunk.stop],
                        v_view[chunk.start : chunk.stop],
                        workspace,
                        proj_stats,
                    )
                if suffix_rows is not None:
                    suffix_rows[(chunk.layer, "hidden")][
                        chunk.start - shared : chunk.stop - shared
                    ] = chunk.data

            if shared < n_tokens:
                if shard_exec is not None:
                    sharded_makespan_s += self._drain_sharded(
                        shard_exec, context_id, hidden_layers, "hidden",
                        project_hidden, stats, io_times, compute_times,
                        shared, interconnect,
                        gather_bytes_per_row=4 * config.hidden_size,
                    )
                else:
                    self._drain_stream(
                        context_id, hidden_layers, "hidden", project_hidden,
                        stats, io_times, compute_times, executor, shared,
                    )
        if kv_layers:
            for layer in kv_layers:
                cache.install_view(layer, n_tokens)
            if shared:
                t0 = time.perf_counter() if timed else 0.0
                block_tokens = self.shared_store.block_tokens
                for layer in kv_layers:
                    for index in range(-(-shared // block_tokens)):
                        bstart = index * block_tokens
                        k_rows, v_rows = self.shared_store.kv_rows(
                            context_id, index, layer
                        )
                        rows = min(k_rows.shape[0], shared - bstart)
                        cache.install_rows(layer, bstart, k_rows[:rows], v_rows[:rows])
                if timed:
                    stats.pool_s += time.perf_counter() - t0

            def install_kv(chunk) -> None:
                t0 = time.perf_counter() if timed else 0.0
                if head_ranges is not None:
                    # Each tensor rank installs its own head range of the
                    # packed granule; the ranges tile [0, n_kv_heads), so
                    # together they land the same bytes as the full-width
                    # install.
                    for head_start, head_stop in head_ranges:
                        cache.install_packed_head_rows(
                            chunk.layer, chunk.start, chunk.data, head_start, head_stop
                        )
                else:
                    cache.install_packed_rows(chunk.layer, chunk.start, chunk.data)
                if timed:
                    stats.install_s += time.perf_counter() - t0
                if suffix_rows is not None:
                    suffix_rows[(chunk.layer, "kv")][
                        chunk.start - shared : chunk.stop - shared
                    ] = chunk.data

            if shared < n_tokens:
                if shard_exec is not None:
                    sharded_makespan_s += self._drain_sharded(
                        shard_exec, context_id, kv_layers, "kv",
                        install_kv, stats, io_times, compute_times,
                        shared, interconnect, gather_bytes_per_row=0,
                    )
                else:
                    self._drain_stream(
                        context_id, kv_layers, "kv", install_kv,
                        stats, io_times, compute_times, executor, shared,
                    )
        if suffix_rows is not None:
            # Close the admission gap: the suffix rows just streamed from
            # storage are republished into the pool, so the session is
            # fully pool-resident (future appends stay contiguous) and its
            # suffix blocks become shareable for later admissions.  The
            # table may hold a few more blocks than the granule-aligned
            # ``shared`` (admission adopts whole blocks); append only what
            # the pool does not already have.
            assert self.shared_store is not None
            resident = self.shared_store.resident_tokens(context_id)
            tokens_all = self.storage.token_log(context_id)
            fresh = {
                key: rows[resident - shared :] for key, rows in suffix_rows.items()
            }
            self.shared_store.append(
                context_id, resident, list(tokens_all[resident:n_tokens]), fresh
            )
        if timed:
            stats.modelled_io_s = sum(io_times)
            compute_total = sum(compute_times) + stats.recompute_s + stats.pool_s
            stats.modelled_serial_s = stats.modelled_io_s + compute_total
            # The RECOMPUTE prefix and the pool-resident shared prefix
            # need no stored state, so their replay/projection overlaps
            # the stream from the very first read.
            pipeline_io = [0.0] + io_times
            pipeline_compute = [stats.recompute_s + stats.pool_s] + compute_times
            stats.modelled_pipelined_s = pipelined_makespan(pipeline_io, pipeline_compute)
            if sharded:
                # The sequential hidden/kv drains each contribute their
                # sharded makespan; the recompute/pool prefix precedes both.
                stats.modelled_sharded_s = (
                    stats.recompute_s + stats.pool_s + sharded_makespan_s
                )
        if len(cache) != n_tokens:
            raise RestorationError("restored cache length mismatch")
        return cache

    def _shared_prefix(
        self, context_id: str, n_tokens: int
    ) -> tuple[int, dict[tuple[int, str], np.ndarray] | None]:
        """Resolve the pool-resident prefix before a restore.

        Returns ``(shared_tokens, suffix_rows)``.  A tracked session is
        fully pool-resident (saves mirror appends 1:1), so the whole
        restore is served from blocks.  An untracked one — evicted before
        the store existed, or re-registered after crash recovery — is
        admitted against the pool's committed prefixes; when that leaves
        a gap, ``suffix_rows`` carries preallocated collection buffers
        the drain fills so the gap can be republished afterwards.
        ``shared_tokens`` is always granule-aligned or equal to
        ``n_tokens``, so the streamed suffix sits on the same granule
        grid a private restore uses.
        """
        store = self.shared_store
        if store is None:
            return 0, None
        granule = self.stream_granule_chunks * self.storage.tokens_per_chunk
        if store.is_tracked(context_id):
            resident = store.resident_tokens(context_id)
            if resident > n_tokens:
                raise StateError(
                    f"context {context_id!r} has {resident} pool-resident tokens "
                    f"but only {n_tokens} saved"
                )
            if resident == n_tokens:
                return resident, None
            # Defensive: a tracked session should mirror its saves
            # exactly; serve whatever aligned prefix is resident.
            return (resident // granule) * granule, None
        tokens = self.storage.token_log(context_id)
        admitted = store.admit(context_id, list(tokens[:n_tokens]))
        if admitted >= n_tokens:
            return admitted, None
        # Rounding down to a granule boundary keeps the suffix stream on
        # the same granule grid a fully private restore walks — sharing
        # may only change where bytes come from, never the chunk split
        # the projection sees (bit-exactness is split-sensitive).
        shared = (admitted // granule) * granule
        config = self.transformer.config
        suffix = n_tokens - shared
        suffix_rows: dict[tuple[int, str], np.ndarray] = {}
        for layer, method in enumerate(self.scheme.methods):
            if method is LayerMethod.HIDDEN:
                suffix_rows[(layer, "hidden")] = np.empty(
                    (suffix, config.hidden_size), dtype=np.float32
                )
            elif method is LayerMethod.KV:
                suffix_rows[(layer, "kv")] = np.empty(
                    (suffix, 2 * config.kv_size), dtype=np.float32
                )
        return shared, suffix_rows

    def _gather_pool_hidden(
        self,
        context_id: str,
        layer: int,
        start: int,
        stop: int,
        out: np.ndarray,
    ) -> None:
        """Assemble pool-resident hidden rows ``[start, stop)`` into ``out``.

        Spans cross block boundaries, so the rows are copied into one
        contiguous staging buffer before projection — the projection must
        see the stream path's exact granule shapes, and a pool block view
        cannot provide a span that straddles two blocks.
        """
        store = self.shared_store
        assert store is not None
        block_tokens = store.block_tokens
        filled = 0
        position = start
        while position < stop:
            index = position // block_tokens
            offset = position % block_tokens
            data = store.hidden_rows(context_id, index, layer)
            take = min(stop - position, data.shape[0] - offset)
            out[filled : filled + take] = data[offset : offset + take]
            filled += take
            position += take

    def _drain_sharded(
        self,
        shard_exec: "ShardedRestoreExecutor",
        context_id: str,
        layers: list[int],
        kind: str,
        consume,
        stats: RestoreBreakdown | None,
        io_times: list[float],
        compute_times: list[float],
        start_tokens: int,
        interconnect: InterconnectSpec,
        gather_bytes_per_row: int,
    ) -> float:
        """Sharded counterpart of :meth:`_drain_stream`.

        Partitions ``layers`` into the executor's pipeline stages and
        drains them concurrently; returns this drain's hybrid sharded
        makespan (0.0 when untimed): per stage, the §4.1 two-stream
        recurrence over its measured granule trace with reads priced at
        the tensor ranks' aggregated bandwidth plus a per-granule
        all-gather of ``gather_bytes_per_row`` bytes per row (hidden
        granules must be reassembled across ranks before projection; KV
        installs pass 0 — nothing to gather): stage IO streams advance
        concurrently, while every granule merges through the single
        calling-thread compute stream.
        """
        from repro.runtime.sharded import StageTrace, partition_layers

        stage_layers = partition_layers(layers, shard_exec.pipeline_shards)
        timed = stats is not None
        traces: list[StageTrace] | None = [] if timed else None
        shard_exec.drain_sharded(
            self.storage, context_id, stage_layers, kind,
            self.stream_granule_chunks, consume,
            stats, io_times, compute_times, start_tokens, traces,
        )
        if not traces:
            return 0.0
        tensor_shards = shard_exec.tensor_shards
        timelines = [
            ShardedStageTimeline(
                stage=trace.stage,
                io_seconds=tuple(trace.io_seconds),
                compute_seconds=tuple(trace.compute_seconds),
                gather_seconds=tuple(
                    allgather_time(
                        rows * gather_bytes_per_row, tensor_shards, interconnect
                    )
                    if gather_bytes_per_row and tensor_shards > 1
                    else 0.0
                    for rows in trace.rows
                ),
            )
            for trace in traces
        ]
        return sharded_restoration_makespan(timelines, tensor_shards)

    def _drain_stream(
        self,
        context_id: str,
        layers: list[int],
        kind: str,
        consume,
        stats: RestoreBreakdown | None,
        io_times: list[float],
        compute_times: list[float],
        executor: "RestoreExecutor | None" = None,
        start_tokens: int = 0,
    ) -> None:
        """Double-buffered drain of a chunk stream.

        ``start_tokens`` (chunk-aligned) skips each layer's pool-served
        shared-prefix rows.

        The staging ring holds two granules, so the pending granule's
        data stays valid while the next granule's read is issued; only
        then is the pending granule consumed (projected or installed).
        Wall-clock read/compute per granule is recorded when ``stats``
        is given, along with the modelled device seconds that feed the
        pipelined-makespan accounting.

        With an ``executor`` the drain is delegated to its IO worker
        pool: same granule order, same consume calls on this thread, but
        the reads run in the background.
        """
        if executor is not None:
            executor.drain(
                self.storage, context_id, layers, kind,
                self.stream_granule_chunks, consume,
                stats, io_times, compute_times, start_tokens,
            )
            return
        timed = stats is not None
        ring = self.storage.staging_ring(
            context_id, kind, depth=2, granule_chunks=self.stream_granule_chunks
        )
        stream = self.storage.stream_layers(context_id, layers, kind, ring, start_tokens)

        def advance():
            t0 = time.perf_counter() if timed else 0.0
            chunk = next(stream, None)
            if timed and chunk is not None:
                stats.read_s += time.perf_counter() - t0
                stats.granules += 1
                stats.device_reads += chunk.device_reads
                io_times.append(chunk.io_seconds)
            return chunk

        pending = advance()
        while pending is not None:
            upcoming = advance()
            t0 = time.perf_counter() if timed else 0.0
            consume(pending)
            if timed:
                compute_times.append(time.perf_counter() - t0)
            pending = upcoming

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------

    def restoration_timing(self, n_tokens: int) -> RestorationTiming:
        """Modelled restoration time for a context of ``n_tokens``.

        Requires the engine to have been built with a platform.
        """
        if self.platform is None:
            raise ConfigError("engine was built without a platform; timing unavailable")
        return scheme_timing(self.transformer.config, self.platform, n_tokens, self.scheme)

    def storage_bytes_per_token(self) -> int:
        """Per-token storage footprint of the active scheme (Table 3)."""
        return self.scheme.storage_bytes_per_token(self.transformer.config)
