"""HCache end-to-end orchestration (§3.1, §4, Fig. 7).

:class:`HCacheEngine` is the public entry point for the *functional* side
of the reproduction: it persists a context's per-layer hidden states (and,
for scheduler-assigned layers, raw KV) into the chunked storage manager as
generation proceeds, evicts GPU state, and later restores a bit-accurate
KV cache by replaying only the K/V projections.  The same object reports
the modelled restoration timing for its platform, so the numeric and
performance views stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import PartitionScheme
from repro.core.profiler import profile_platform
from repro.core.restoration import RestorationTiming, scheme_timing
from repro.core.scheduler import BubbleFreeScheduler, ScheduleDecision
from repro.errors import ConfigError, RestorationError, StateError
from repro.models.kv_cache import KVCache
from repro.models.transformer import Transformer
from repro.simulator.hardware import Platform
from repro.simulator.pipeline import LayerMethod
from repro.storage.manager import StorageManager


@dataclass(frozen=True)
class SavedContext:
    """Book-keeping for one context the engine manages.

    Attributes:
        context_id: Stable identity.
        scheme: Partition scheme its states were saved under.
        n_tokens: Tokens saved so far.
    """

    context_id: str
    scheme: PartitionScheme
    n_tokens: int


class HCacheEngine:
    """Saves and restores LLM contextual state via hidden states."""

    def __init__(
        self,
        transformer: Transformer,
        storage: StorageManager,
        platform: Platform | None = None,
        scheme: PartitionScheme | None = None,
    ) -> None:
        """Create an engine.

        Args:
            transformer: The serving model (provides the projection
                weights used for restoration).
            storage: Chunked host storage for hidden states / KV.
            platform: Hardware platform for timing queries; when given and
                ``scheme`` is omitted, the bubble-free scheduler picks the
                partition from an offline profile at a reference length.
            scheme: Fixed partition scheme; defaults to pure HCache when
                neither a scheme nor a platform is supplied.
        """
        self.transformer = transformer
        self.storage = storage
        self.platform = platform
        config = transformer.config
        if scheme is not None:
            if scheme.n_layers != config.n_layers:
                raise ConfigError("scheme layer count mismatches the model")
            self.scheme = scheme
            self.decision: ScheduleDecision | None = None
        elif platform is not None:
            profile = profile_platform(config, platform, n_tokens=1024)
            self.decision = BubbleFreeScheduler(config.n_layers).schedule(profile)
            self.scheme = self.decision.scheme
        else:
            self.scheme = PartitionScheme.pure_hcache(config.n_layers)
            self.decision = None
        self._contexts: dict[str, int] = {}
        self._tokens: dict[str, list[int]] = {}

    # ------------------------------------------------------------------
    # saving
    # ------------------------------------------------------------------

    def register_context(self, context_id: str) -> None:
        """Declare a new context before saving states for it."""
        if context_id in self._contexts:
            raise StateError(f"context {context_id!r} already registered")
        self.storage.register_context(
            context_id,
            n_layers=self.transformer.config.n_layers,
            hidden_width=self.transformer.config.hidden_size,
            dtype=np.float32,
        )
        self._contexts[context_id] = 0
        self._tokens[context_id] = []

    def has_context(self, context_id: str) -> bool:
        return context_id in self._contexts

    def saved_tokens(self, context_id: str) -> int:
        if context_id not in self._contexts:
            raise StateError(f"context {context_id!r} not registered")
        return self._contexts[context_id]

    def save_states(
        self,
        context_id: str,
        hidden_states: list[np.ndarray],
        tokens: np.ndarray,
        kv_cache: KVCache | None = None,
    ) -> None:
        """Persist newly generated states for a block of tokens.

        Args:
            context_id: The context the block extends.
            hidden_states: Per-layer ``(n_new, hidden)`` arrays — the
                residual inputs captured during the forward pass.
            tokens: The block's token ids (needed by recompute layers and
                kept for all layers, mirroring the prompt log every serving
                system retains).
            kv_cache: Required when the scheme KV-offloads some layers;
                its trailing ``n_new`` rows for those layers are saved.
        """
        config = self.transformer.config
        if len(hidden_states) != config.n_layers:
            raise ConfigError(
                f"expected {config.n_layers} per-layer hidden states, got {len(hidden_states)}"
            )
        tokens = np.asarray(tokens)
        n_new = hidden_states[0].shape[0]
        if tokens.size != n_new:
            raise ConfigError("token block must match the hidden-state block length")
        if self.scheme.n_kv and kv_cache is None:
            raise ConfigError("scheme KV-offloads layers; a kv_cache is required to save them")
        start = self.saved_tokens(context_id)
        for layer, method in enumerate(self.scheme.methods):
            if method is LayerMethod.HIDDEN:
                self.storage.append(context_id, layer, hidden_states[layer], kind="hidden")
            elif method is LayerMethod.KV:
                assert kv_cache is not None
                have = kv_cache.layer_len(layer)
                if have < start + n_new:
                    raise ConfigError(
                        f"kv_cache holds {have} tokens at layer {layer}, "
                        f"need {start + n_new}"
                    )
                # Pack only the new rows — O(block), not O(history).
                self.storage.append(
                    context_id,
                    layer,
                    kv_cache.packed_rows(layer, start, start + n_new),
                    kind="kv",
                )
        self._contexts[context_id] = start + n_new
        self._tokens[context_id].extend(int(t) for t in tokens)

    def seal(self, context_id: str) -> None:
        """Flush tail chunks when a round ends and GPU state is evicted."""
        self.saved_tokens(context_id)
        self.storage.seal_context(context_id)

    def drop_context(self, context_id: str) -> None:
        """Remove a context's states entirely."""
        self.saved_tokens(context_id)
        self.storage.free_context(context_id)
        del self._contexts[context_id]
        del self._tokens[context_id]

    def saved_context(self, context_id: str) -> SavedContext:
        return SavedContext(context_id, self.scheme, self.saved_tokens(context_id))

    # ------------------------------------------------------------------
    # restoration
    # ------------------------------------------------------------------

    def restore(self, context_id: str, reserve_tokens: int = 0) -> KVCache:
        """Rebuild the context's full KV cache from saved state.

        Layers marked HIDDEN are projected from their stored hidden states
        (the HCache path) straight into the cache's preallocated backing
        buffers; KV layers are installed from their stored pairs; a
        RECOMPUTE prefix is replayed from the retained tokens.  HIDDEN and
        KV layers come back bit-identical to the states that were saved; a
        RECOMPUTE prefix replays the forward pass as one block, which
        matches incrementally-decoded originals to float rounding (the
        same GEMM-blocking caveat as restoring any decode-produced state).

        ``reserve_tokens`` lets the serving engine size the cache for the
        upcoming round up front, so the restored history never has to be
        recopied by a post-restore capacity growth.
        """
        n_tokens = self.saved_tokens(context_id)
        if n_tokens == 0:
            raise RestorationError(f"context {context_id!r} has no saved state")
        config = self.transformer.config
        positions = np.arange(n_tokens)
        hidden_layers = list(self.scheme.layers_with(LayerMethod.HIDDEN))
        kv_layers = list(self.scheme.layers_with(LayerMethod.KV))
        if self.scheme.n_recompute:
            tokens = np.array(self._tokens[context_id])
            cache, _ = self.transformer.recompute_prefix(tokens, self.scheme.n_recompute)
        else:
            cache = KVCache(config)
        cache.reserve(max(n_tokens, reserve_tokens))
        if hidden_layers:
            # Gather every HIDDEN layer's run directly into one stacked
            # block and project them all through the batched norm + GEMM
            # path, writing into the cache's backing storage.
            stacked = np.empty(
                (len(hidden_layers), n_tokens, config.hidden_size), dtype=np.float32
            )
            for i, layer in enumerate(hidden_layers):
                stored = self.storage.tokens_stored(context_id, layer, kind="hidden")
                if stored != n_tokens:
                    raise RestorationError(
                        f"layer {layer} stores {stored} tokens, expected {n_tokens}"
                    )
                self.storage.load_layer(context_id, layer, kind="hidden", out=stacked[i])
            self.transformer.project_kv_into(stacked, positions, cache, layers=hidden_layers)
        if kv_layers:
            # One staging buffer for every KV layer: chunks read straight
            # into it, install_packed writes it into cache storage.
            staging = np.empty(
                (n_tokens, self.storage.meta(context_id).kv_width), dtype=np.float32
            )
            for layer in kv_layers:
                stored = self.storage.tokens_stored(context_id, layer, kind="kv")
                if stored != n_tokens:
                    raise RestorationError(
                        f"layer {layer} stores {stored} KV rows, expected {n_tokens}"
                    )
                self.storage.load_layer(context_id, layer, kind="kv", out=staging)
                cache.install_packed(layer, staging)
        if len(cache) != n_tokens:
            raise RestorationError("restored cache length mismatch")
        return cache

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------

    def restoration_timing(self, n_tokens: int) -> RestorationTiming:
        """Modelled restoration time for a context of ``n_tokens``.

        Requires the engine to have been built with a platform.
        """
        if self.platform is None:
            raise ConfigError("engine was built without a platform; timing unavailable")
        return scheme_timing(self.transformer.config, self.platform, n_tokens, self.scheme)

    def storage_bytes_per_token(self) -> int:
        """Per-token storage footprint of the active scheme (Table 3)."""
        return self.scheme.storage_bytes_per_token(self.transformer.config)
