"""The bubble-free restoration scheduler (§4.1).

Given an offline hardware profile, the scheduler picks how many layers to
restore from hidden states (``L_H``) and how many via the complementary
method (``L_O``), so that the compute and IO streams finish together:

- **Compute-bound platforms** (``C_H > IO_H``): IO would idle while
  projections drain, so the last ``L_O`` layers are fetched as raw KV
  cache, filling the bubble with transmission work:

      ``L_H = ceil(N * IO_KV / (IO_KV + C_H - IO_H))``

- **IO-bound platforms** (``C_H <= IO_H``): compute would idle while
  hidden states stream in, so the first ``L_O`` layers are recomputed from
  tokens while the rest prefetch:

      ``L_H = ceil(N * C_token / (C_token + IO_H - C_H))``

Both forms solve ``argmin max(stream finish times)`` subject to
``L_H + L_O = N`` — the min-max program stated in §4.1.2.  The module also
provides an exhaustive search over partitions, used by the ablation bench
and the test suite to confirm the closed form's optimality on the actual
pipeline model (which adds chunk granularity and GEMM quantization the
closed form ignores).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.partition import PartitionScheme
from repro.core.profiler import HardwareProfile
from repro.errors import SchedulingError
from repro.simulator.pipeline import (
    LayerMethod,
    LayerPlan,
    build_layerwise_schedule,
)


@dataclass(frozen=True)
class ScheduleDecision:
    """The scheduler's output for one (model, platform, workload) point.

    Attributes:
        scheme: The chosen per-layer partition.
        profile: The hardware profile the decision was derived from.
        predicted_makespan: Modelled restoration time of the scheme.
        predicted_bubble_fraction: Idle fraction of the bottleneck stream.
    """

    scheme: PartitionScheme
    profile: HardwareProfile
    predicted_makespan: float
    predicted_bubble_fraction: float

    def describe(self) -> str:
        return (
            f"{self.scheme.describe()} "
            f"(makespan {self.predicted_makespan * 1e3:.2f} ms, "
            f"bubble {self.predicted_bubble_fraction * 100:.1f}%)"
        )


def layer_plans_for_scheme(scheme: PartitionScheme, profile: HardwareProfile) -> list[LayerPlan]:
    """Expand a partition scheme into per-layer pipeline tasks."""
    plans: list[LayerPlan] = []
    for layer, method in enumerate(scheme.methods):
        if method is LayerMethod.HIDDEN:
            plans.append(LayerPlan(layer, method, profile.io_hidden, profile.compute_hidden))
        elif method is LayerMethod.KV:
            plans.append(LayerPlan(layer, method, profile.io_kv, 0.0))
        else:
            plans.append(LayerPlan(layer, method, 0.0, profile.compute_token))
    return plans


def evaluate_scheme(scheme: PartitionScheme, profile: HardwareProfile) -> float:
    """Pipeline makespan of ``scheme`` under ``profile`` (seconds)."""
    return build_layerwise_schedule(layer_plans_for_scheme(scheme, profile)).makespan


class BubbleFreeScheduler:
    """Derives bubble-free partition schemes from hardware profiles."""

    def __init__(self, n_layers: int) -> None:
        if n_layers <= 0:
            raise SchedulingError("scheduler needs a positive layer count")
        self.n_layers = n_layers

    # -- the paper's closed forms -------------------------------------

    def closed_form_l_h(self, profile: HardwareProfile) -> int:
        """``L_H`` from the §4.1.2 formulas, clamped to ``[0, N]``."""
        n = self.n_layers
        if profile.compute_bound:
            denom = profile.io_kv + profile.compute_hidden - profile.io_hidden
            l_h = math.ceil(n * profile.io_kv / denom)
        else:
            denom = profile.compute_token + profile.io_hidden - profile.compute_hidden
            l_h = math.ceil(n * profile.compute_token / denom)
        return max(0, min(n, l_h))

    def schedule(self, profile: HardwareProfile) -> ScheduleDecision:
        """Choose the partition for ``profile`` via the closed form.

        The complementary method follows the platform regime: KV offload on
        compute-bound platforms, token recomputation on IO-bound ones.  A
        local refinement step checks the closed form's integer neighbours
        — plus the two pure endpoints, so extreme profiles where mixing
        never pays (e.g. hidden compute dwarfing the KV transfer it
        saves) fall back to the better pure scheme — on the full pipeline
        model and keeps the best, mirroring how the real system would
        re-profile around the analytic answer.

        The *other* regime's pure endpoint is also evaluated: on a
        compute-bound platform the regime complement is KV offload, but
        when token recompute is cheaper than the projection itself
        (``C_token < C_H`` — outside the paper's studied regime, where a
        full-layer forward always dwarfs the two projection GEMMs) no
        KV/hidden mix can beat simply recomputing every layer, so pure
        recompute joins the candidate set (and symmetrically pure KV on
        IO-bound platforms).  Mixed cross-regime complements stay out of
        scope: within either regime's own cost model the mixed optimum is
        already covered by the closed form plus these endpoints.
        """
        l_h = self.closed_form_l_h(profile)
        candidates = {
            max(0, min(self.n_layers, layers))
            for layers in (l_h - 1, l_h, l_h + 1, 0, self.n_layers)
        }
        schemes = [self._scheme_for(profile, candidate) for candidate in sorted(candidates)]
        if profile.compute_bound:
            schemes.append(PartitionScheme.with_recompute_prefix(self.n_layers, self.n_layers))
        else:
            schemes.append(PartitionScheme.with_kv_suffix(self.n_layers, self.n_layers))
        best_scheme: PartitionScheme | None = None
        best_makespan = math.inf
        for scheme in schemes:
            makespan = evaluate_scheme(scheme, profile)
            if makespan < best_makespan - 1e-12:
                best_scheme, best_makespan = scheme, makespan
        assert best_scheme is not None
        return self._decision(best_scheme, profile, best_makespan)

    def _scheme_for(self, profile: HardwareProfile, l_h: int) -> PartitionScheme:
        l_o = self.n_layers - l_h
        if profile.compute_bound:
            return PartitionScheme.with_kv_suffix(self.n_layers, l_o)
        return PartitionScheme.with_recompute_prefix(self.n_layers, l_o)

    def _decision(
        self, scheme: PartitionScheme, profile: HardwareProfile, makespan: float
    ) -> ScheduleDecision:
        result = build_layerwise_schedule(layer_plans_for_scheme(scheme, profile))
        bottleneck = "compute" if profile.compute_bound else "io"
        return ScheduleDecision(
            scheme=scheme,
            profile=profile,
            predicted_makespan=makespan,
            predicted_bubble_fraction=result.bubble_fraction(bottleneck),
        )

    # -- exhaustive verification --------------------------------------

    def schedule_by_search(self, profile: HardwareProfile) -> ScheduleDecision:
        """Exhaustively search every ``L_H`` with both complement types.

        Slower than :meth:`schedule` but guaranteed optimal within the
        layer-wise partition family; the test suite asserts the closed form
        stays within a small factor of this.
        """
        best: tuple[float, PartitionScheme] | None = None
        for l_h in range(self.n_layers + 1):
            l_o = self.n_layers - l_h
            for scheme in (
                PartitionScheme.with_kv_suffix(self.n_layers, l_o),
                PartitionScheme.with_recompute_prefix(self.n_layers, l_o),
            ):
                makespan = evaluate_scheme(scheme, profile)
                if best is None or makespan < best[0] - 1e-12:
                    best = (makespan, scheme)
        assert best is not None
        return self._decision(best[1], profile, best[0])
