"""Restoration timing: schemes and partitions -> pipelined wall-clock time.

Bridges the scheduler's partition decisions and the simulator's stream
model into the quantities the paper reports: restoration makespan,
restoration speed (restored tokens per second, the y-axis of Fig. 11-13),
and per-stream bubble accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import PartitionScheme, TokenPartition
from repro.core.profiler import HardwareProfile, build_storage_array, profile_platform
from repro.core.scheduler import BubbleFreeScheduler, ScheduleDecision, layer_plans_for_scheme
from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.simulator.costs import full_layer_flops, kv_projection_flops
from repro.simulator.gemm import kv_projection_time, round_up_tokens
from repro.simulator.hardware import Platform
from repro.simulator.pipeline import (
    COMPUTE_STREAM,
    IO_STREAM,
    TokenwiseLayerPlan,
    build_layerwise_schedule,
    build_tokenwise_schedule,
)
from repro.simulator.streams import ScheduleResult
from repro.storage.chunk import CHUNK_TOKENS


@dataclass(frozen=True)
class RestorationTiming:
    """A fully evaluated restoration of one context.

    Attributes:
        n_tokens: History tokens restored.
        makespan: End-to-end restoration wall-clock time (seconds).
        io_busy: Total IO-stream work.
        compute_busy: Total compute-stream work.
        io_bubble: IO-stream idle time within the restoration window.
        compute_bubble: Compute-stream idle time.
    """

    n_tokens: int
    makespan: float
    io_busy: float
    compute_busy: float
    io_bubble: float
    compute_bubble: float

    @property
    def restoration_speed(self) -> float:
        """Restored tokens per second — the paper's recovery-speed metric."""
        if self.makespan <= 0:
            return float("inf")
        return self.n_tokens / self.makespan


def _timing_from_schedule(result: ScheduleResult, n_tokens: int) -> RestorationTiming:
    return RestorationTiming(
        n_tokens=n_tokens,
        makespan=result.makespan,
        io_busy=result.busy_time(IO_STREAM),
        compute_busy=result.busy_time(COMPUTE_STREAM),
        io_bubble=result.bubble_time(IO_STREAM),
        compute_bubble=result.bubble_time(COMPUTE_STREAM),
    )


def scheme_timing(
    config: ModelConfig,
    platform: Platform,
    n_tokens: int,
    scheme: PartitionScheme,
    profile: HardwareProfile | None = None,
) -> RestorationTiming:
    """Evaluate a given partition scheme's restoration on a platform."""
    if scheme.n_layers != config.n_layers:
        raise ConfigError("scheme layer count mismatches the model")
    prof = profile if profile is not None else profile_platform(config, platform, n_tokens)
    result = build_layerwise_schedule(layer_plans_for_scheme(scheme, prof))
    return _timing_from_schedule(result, n_tokens)


def hcache_timing(
    config: ModelConfig,
    platform: Platform,
    n_tokens: int,
) -> tuple[RestorationTiming, ScheduleDecision]:
    """Profile, schedule, and time a full HCache restoration."""
    profile = profile_platform(config, platform, n_tokens)
    decision = BubbleFreeScheduler(config.n_layers).schedule(profile)
    timing = scheme_timing(config, platform, n_tokens, decision.scheme, profile)
    return timing, decision


def hcache_only_timing(
    config: ModelConfig, platform: Platform, n_tokens: int
) -> RestorationTiming:
    """The HCache-O ablation variant: all layers from hidden states."""
    scheme = PartitionScheme.pure_hcache(config.n_layers)
    return scheme_timing(config, platform, n_tokens, scheme)


def tokenwise_timing(
    config: ModelConfig,
    platform: Platform,
    partition: TokenPartition,
    complement: str = "recompute",
    round_up: bool = False,
) -> RestorationTiming:
    """Evaluate a token-wise partition (Fig. 13 ablation).

    Every layer restores the hidden shard by transmission + projection and
    the complementary shard either by token recomputation (the paper's
    Fig. 13 configuration: "794 tokens via hidden states, 230 via token
    recomputation") or by KV transfer.  With ``round_up`` the hidden shard
    is issued at the next tile boundary (the "Token-Wise + Round" variant);
    without it, the irregular GEMM pays the tile padding implicitly — the
    cuBLAS effect the paper measured.
    """
    if complement not in ("recompute", "kv"):
        raise ConfigError(f"unknown token-wise complement {complement!r}")
    n_h, n_o = partition.n_hidden_tokens, partition.n_other_tokens
    if partition.total_tokens == 0:
        raise ConfigError("token partition covers no tokens")
    array = build_storage_array(platform)
    hidden_nbytes = n_h * config.hidden_bytes_per_token_layer
    chunk_bytes = CHUNK_TOKENS * config.hidden_bytes_per_token_layer
    io_time = 0.0
    if hidden_nbytes:
        io_time += array.read_time(hidden_nbytes, chunk_bytes)
    compute_time = 0.0
    if n_h:
        projected = round_up_tokens(n_h) if round_up else n_h
        compute_time += kv_projection_time(
            projected, config.hidden_size, config.kv_size, platform
        ).seconds
    if n_o:
        if complement == "kv":
            io_time += array.read_time(
                n_o * config.kv_bytes_per_token_layer, 2 * chunk_bytes
            )
        else:
            compute_time += full_layer_flops(config, n_o) / (
                platform.total_flops * platform.prefill_efficiency
            )
    plans = [
        TokenwiseLayerPlan(layer, io_time, compute_time) for layer in range(config.n_layers)
    ]
    result = build_tokenwise_schedule(plans)
    return _timing_from_schedule(result, partition.total_tokens)


def naive_tokenwise_split(
    config: ModelConfig, platform: Platform, n_tokens: int, step: int = 2
) -> TokenPartition:
    """The split a token-wise scheduler would choose *without* knowing
    about GEMM tile quantization (§4.1.1's failure mode).

    Balances per-layer hidden transmission against projection-plus-
    recompute using the smooth closed-form costs; the resulting irregular
    token count (e.g. the paper's 794) then pays the padded-kernel price
    when actually executed.
    """
    if n_tokens <= 0:
        raise ConfigError("n_tokens must be positive")
    array = build_storage_array(platform)
    chunk_bytes = CHUNK_TOKENS * config.hidden_bytes_per_token_layer
    best_n, best_cost = 0, float("inf")
    for n_h in range(0, n_tokens + 1, max(1, step)):
        io = (
            array.read_time(n_h * config.hidden_bytes_per_token_layer, chunk_bytes)
            if n_h
            else 0.0
        )
        compute = kv_projection_flops(config, n_h) / (
            platform.total_flops * platform.gemm_eff
        )
        compute += full_layer_flops(config, n_tokens - n_h) / (
            platform.total_flops * platform.prefill_efficiency
        )
        cost = max(io, compute)
        if cost < best_cost - 1e-15:
            best_n, best_cost = n_h, cost
    return TokenPartition(best_n, n_tokens - best_n)


def best_tokenwise_partition(
    config: ModelConfig,
    platform: Platform,
    n_tokens: int,
    step: int = 1,
    complement: str = "auto",
    round_up: bool = False,
) -> tuple[RestorationTiming, TokenPartition]:
    """Search token splits for the best token-wise restoration time.

    Mirrors what a token-wise scheduler would do: balance the per-layer IO
    and compute by moving tokens between the HCache shard and the
    complementary shard.  ``complement="auto"`` tries both recomputation
    and KV transfer and keeps the faster.
    """
    if n_tokens <= 0:
        raise ConfigError("n_tokens must be positive")
    complements = ("recompute", "kv") if complement == "auto" else (complement,)
    best: tuple[RestorationTiming, TokenPartition] | None = None
    for comp in complements:
        for n_h in range(0, n_tokens + 1, max(1, step)):
            if round_up and n_h not in (0, n_tokens):
                aligned = round_up_tokens(n_h)
                if aligned > n_tokens or aligned != n_h:
                    continue
            partition = TokenPartition(n_h, n_tokens - n_h)
            timing = tokenwise_timing(
                config, platform, partition, complement=comp, round_up=round_up
            )
            if best is None or timing.makespan < best[0].makespan - 1e-12:
                best = (timing, partition)
    assert best is not None
    return best
