"""State-saving strategies and their decode-path impact (§4.2.2, Fig. 14).

During generation, each layer's hidden states live in a temporary buffer
that the next layer reuses, so they must leave the GPU before the buffer is
overwritten.  Two strategies are modelled:

- **Two-stage saving** (HCache's design): the whole batch's hidden states
  are snapshotted to host DRAM with a single ``cudaMemcpy``; a host daemon
  packs them into chunks and flushes full chunks to the SSDs in the
  background.  The GPU stalls only if the D2H copy outlasts the layer's
  compute or the daemon's staging buffer fills — neither happens at decode
  rates (§6.3.3: ~3 GB/s worst case versus 32 GB/s PCIe).
- **DirectIO**: hidden states are written straight to their chunks on the
  SSDs.  With continuous batching, a batch holds tokens from many
  sequences whose chunks live at scattered locations, so each layer issues
  ``batch_size`` small synchronous writes.  These serialize on the
  submission path and stall decoding once they outlast a layer's compute —
  the degradation Fig. 14 shows growing with batch size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.simulator.costs import decode_iteration_time
from repro.simulator.hardware import PM9A3, Platform, SSDSpec
from repro.storage.daemon import FlushDaemon


class SavingStrategy(Protocol):
    """Anything that can report the GPU stall one layer's saving causes."""

    name: str

    def layer_stall(self, batch_size: int, bytes_per_token: int, layer_time: float) -> float:
        """Stall added to one layer given the batch's per-token state size."""
        ...


@dataclass
class NoSaver:
    """Ideal baseline: states are never saved (no stateful reuse)."""

    name: str = "ideal"

    def layer_stall(self, batch_size: int, bytes_per_token: int, layer_time: float) -> float:
        return 0.0


class TwoStageSaver:
    """HCache's snapshot-then-flush saving path."""

    name = "two-stage"

    def __init__(self, platform: Platform, daemon: FlushDaemon | None = None) -> None:
        self.platform = platform
        self.daemon = daemon if daemon is not None else FlushDaemon(
            write_bandwidth=platform.storage_write_bandwidth
        )
        self._now = 0.0

    def layer_stall(self, batch_size: int, bytes_per_token: int, layer_time: float) -> float:
        """Per-layer stall: D2H snapshot overlap plus staging pressure.

        The snapshot overlaps the layer's own compute on a dedicated copy
        stream; the next layer waits only for the snapshot event, so the
        visible stall is the copy time beyond the layer time.  The daemon
        then absorbs the bytes; if its staging buffer is full the snapshot
        blocks until space frees.
        """
        if batch_size < 0 or bytes_per_token < 0:
            raise ConfigError("batch size and state size must be non-negative")
        nbytes = batch_size * bytes_per_token
        copy_time = nbytes / (self.platform.gpu.pcie_bandwidth * self.platform.n_gpus)
        stall = max(0.0, copy_time - layer_time)
        self._now += layer_time + stall
        outcome = self.daemon.snapshot(nbytes, self._now)
        self._now += outcome.stall_seconds
        return stall + outcome.stall_seconds


class DirectIOSaver:
    """The ablation variant writing hidden states straight to SSD chunks."""

    name = "direct-io"

    def __init__(self, platform: Platform, ssd: SSDSpec | None = None) -> None:
        self.platform = platform
        if ssd is not None:
            self.ssd = ssd
        elif platform.ssds:
            self.ssd = platform.ssds[0]
        else:
            self.ssd = PM9A3

    def layer_stall(self, batch_size: int, bytes_per_token: int, layer_time: float) -> float:
        """Per-layer stall of ``batch_size`` serialized small writes.

        Writes overlap the layer's decode compute (double-buffered), so the
        stall is only the excess — zero for small batches, then growing
        roughly linearly, matching Fig. 14's shape.
        """
        if batch_size < 0 or bytes_per_token < 0:
            raise ConfigError("batch size and state size must be non-negative")
        io_time = batch_size * self.ssd.small_write_time(bytes_per_token)
        return max(0.0, io_time - layer_time)


@dataclass(frozen=True)
class DecodeSavingImpact:
    """Modelled TBT with a given saving strategy (one decode iteration).

    Attributes:
        tbt: Time between tokens, including saving stalls.
        base_tbt: TBT with no saving at all (the Fig. 14 "Ideal" line).
        stall: Total per-iteration stall caused by saving.
    """

    tbt: float
    base_tbt: float
    stall: float

    @property
    def overhead_fraction(self) -> float:
        if self.base_tbt <= 0:
            return 0.0
        return (self.tbt - self.base_tbt) / self.base_tbt


def decode_tbt_with_saving(
    config: ModelConfig,
    platform: Platform,
    batch_size: int,
    history_len: int,
    saver: SavingStrategy,
) -> DecodeSavingImpact:
    """TBT of a decode batch when every layer's hidden states are saved.

    ``history_len`` is each sequence's context length (Fig. 14 uses 512).
    The iteration's compute is spread evenly over layers; each layer then
    pays its saving stall.
    """
    if batch_size <= 0:
        raise ConfigError("batch size must be positive")
    base_tbt = decode_iteration_time(
        config, platform, batch_size, context_tokens=batch_size * history_len
    )
    layer_time = base_tbt / config.n_layers
    total_stall = 0.0
    for _ in range(config.n_layers):
        total_stall += saver.layer_stall(
            batch_size, config.hidden_bytes_per_token_layer, layer_time
        )
    return DecodeSavingImpact(tbt=base_tbt + total_stall, base_tbt=base_tbt, stall=total_stall)
