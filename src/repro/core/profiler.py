"""Offline hardware profiling (§4.1.2).

The bubble-free scheduler needs four per-layer quantities for the target
(model, platform, history length): hidden-state transmission time ``IO_H``,
KV transmission time ``IO_KV``, KV-projection compute time ``C_H``, and
full-layer token-recompute time ``C_token``.  The real system measures them
once per deployment; this reproduction "profiles" the simulated hardware by
evaluating the performance model, charging chunked-read timing when the
platform stores state on an SSD array.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.models.config import ModelConfig
from repro.simulator.costs import full_layer_flops
from repro.simulator.gemm import kv_projection_time
from repro.simulator.hardware import Platform
from repro.storage.array import StorageArray
from repro.storage.chunk import CHUNK_TOKENS


@dataclass(frozen=True)
class HardwareProfile:
    """Per-layer restoration costs measured for a concrete workload point.

    All times are seconds for one layer covering ``n_tokens`` of history.
    ``compute_token`` is the full transformer-layer forward (attention +
    FFN) used by the recomputation path; ``compute_hidden`` is the K/V
    projection pair used by the HCache path.
    """

    model: str
    n_tokens: int
    io_hidden: float
    io_kv: float
    compute_hidden: float
    compute_token: float

    def __post_init__(self) -> None:
        if min(self.io_hidden, self.io_kv, self.compute_hidden, self.compute_token) < 0:
            raise ConfigError("profiled times must be non-negative")

    @property
    def compute_bound(self) -> bool:
        """True when the projection outweighs the hidden transmission —
        the regime where HCache pairs with KV offload (§4.1.2)."""
        return self.compute_hidden > self.io_hidden

    def describe(self) -> str:
        return (
            f"{self.model}@{self.n_tokens}tok: IO_H={self.io_hidden * 1e6:.1f}us "
            f"IO_KV={self.io_kv * 1e6:.1f}us C_H={self.compute_hidden * 1e6:.1f}us "
            f"C_tok={self.compute_token * 1e6:.1f}us "
            f"({'compute' if self.compute_bound else 'io'}-bound)"
        )


def build_storage_array(platform: Platform) -> StorageArray:
    """Construct the platform's storage array (SSDs, or DRAM fallback)."""
    link = platform.gpu.pcie_bandwidth * platform.n_gpus
    if platform.uses_dram_backend:
        return StorageArray([platform.dram], link_bandwidth=link)
    return StorageArray(list(platform.ssds), link_bandwidth=link)


def profile_platform(
    config: ModelConfig,
    platform: Platform,
    n_tokens: int,
    tokens_per_chunk: int = CHUNK_TOKENS,
) -> HardwareProfile:
    """Profile one (model, platform, history-length) point.

    Transmission times account for the chunked layout: a layer is read as
    ``ceil(n_tokens / 64)`` chunk I/Os striped round-robin over the array.
    Compute times use the tile-quantized GEMM model for the projection and
    the prefill-efficiency FLOP model for full-layer recompute.
    """
    if n_tokens <= 0:
        raise ConfigError("profiling needs a positive token count")
    array = build_storage_array(platform)
    n_chunks = math.ceil(n_tokens / tokens_per_chunk)
    hidden_chunk = tokens_per_chunk * config.hidden_bytes_per_token_layer
    kv_chunk = tokens_per_chunk * config.kv_bytes_per_token_layer
    io_hidden = array.layer_read_timing(n_chunks, hidden_chunk).seconds
    io_kv = array.layer_read_timing(n_chunks, kv_chunk).seconds
    compute_hidden = kv_projection_time(
        n_tokens, config.hidden_size, config.kv_size, platform
    ).seconds
    compute_token = full_layer_flops(config, n_tokens) / (
        platform.total_flops * platform.prefill_efficiency
    ) + platform.kernel_overhead
    return HardwareProfile(
        model=config.name,
        n_tokens=n_tokens,
        io_hidden=io_hidden,
        io_kv=io_kv,
        compute_hidden=compute_hidden,
        compute_token=compute_token,
    )
